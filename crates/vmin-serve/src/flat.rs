//! Flattened inference tables: branch-predictable replays of the fitted
//! boosters' prediction walks.
//!
//! The exactness contract is the whole point, so it is stated once here
//! and every kernel below cites it:
//!
//! - **GBT.** The live path computes
//!   `p = base_score; for tree: p += learning_rate · tree.predict_row(row)`
//!   where the walk routes `row[feature] < threshold → left`. The flat
//!   table stores each leaf's contribution **pre-scaled** as
//!   `learning_rate · weight` — one IEEE multiplication evaluated at
//!   compile time instead of per prediction, producing the *same* `f64`
//!   product — and the kernels accumulate contributions per row in tree
//!   order. Identical operand values, identical operation order →
//!   bit-identical sums.
//! - **Oblivious.** The live walk sets bit `k` of the leaf index when
//!   `row[levels[k].0] > levels[k].1` and looks up `leaf_values[index]`;
//!   the LUT stores `learning_rate · leaf_values` (same pre-scaling
//!   argument) and the kernel rebuilds the identical bitmask.
//! - **Tie/NaN routing.** Thresholds are copied verbatim: strict `<`
//!   (GBT, NaN routes right) and strict `>` (oblivious, NaN leaves the
//!   bit clear) behave exactly as trained. See DESIGN.md §14 for how this
//!   composes with the training-time `split_at` semantics.
//!
//! Structural invariant used for safe, provably-terminating walks: every
//! fit path pushes a split node before its children, so child indices are
//! strictly greater than the parent's. [`FlatGbt::compile`] checks it and
//! the artifact decoder re-checks it on untrusted bytes.

use crate::engine::ServeError;
use vmin_models::{GradientBoost, NodeView, ObliviousBoost};

/// Sentinel in [`FlatGbt`]'s feature column marking a leaf node; the
/// threshold slot then holds the pre-scaled leaf contribution.
pub(crate) const LEAF: u32 = u32::MAX;

/// Deepest oblivious tree the LUT kernel accepts (the fit path already
/// rejects depth > 16, so a larger value in an artifact is corruption).
pub(crate) const MAX_OBLIVIOUS_DEPTH: usize = 16;

fn narrow(value: usize, what: &str) -> Result<u32, ServeError> {
    u32::try_from(value)
        .map_err(|_| ServeError::InvalidModel(format!("{what} {value} exceeds u32 range")))
}

/// Rows walked in lockstep per tree by the batch kernel. Each row's walk
/// is a serial load→compare→load dependency chain; running [`GROUP`]
/// independent chains interleaved lets the CPU overlap their latencies.
pub(crate) const GROUP: usize = 8;

/// Repacks a row-major block into per-[`GROUP`] *lane-major* scratch:
/// group `g`, feature `f`, lane `j` lands at
/// `g·GROUP·width + f·GROUP + j`. Every lockstep chain then addresses its
/// row value off one shared base pointer (`feat · GROUP + j`, with `j` a
/// compile-time constant per unrolled chain) instead of keeping
/// [`GROUP`] per-row base pointers alive — which is the difference
/// between the kernel running out of registers and not. The transpose
/// runs once per block and is reused by every tree.
fn transpose_lanes(rows: &[f64], width: usize, groups: usize) -> Vec<f64> {
    let mut lanes = vec![0.0; groups * GROUP * width];
    for g in 0..groups {
        let rows_base = g * GROUP * width;
        for j in 0..GROUP {
            let row = &rows[rows_base + j * width..rows_base + (j + 1) * width];
            for (f, &v) in row.iter().enumerate() {
                lanes[rows_base + f * GROUP + j] = v;
            }
        }
    }
    lanes
}

/// Feature slots of the fixed-width lane layout ([`transpose_lanes_fixed`]).
/// Models at most this wide qualify for the fully bounds-check-free
/// kernel: a group's lanes become a `[u64; LANE_BLOCK]` array and the
/// lane index — an offset *byte* plus a constant `j < GROUP` — is
/// provably within it from its type alone, no masking needed.
pub(crate) const LANE_WIDTH: usize = 32;

/// Lane scratch per group in the fixed-width layout: [`LANE_WIDTH`]
/// feature slots of [`GROUP`] lanes, plus one spare [`GROUP`] so that a
/// pre-scaled offset byte (≤ 255) plus a lane index (`< GROUP`) is
/// provably in bounds with no masking.
pub(crate) const LANE_BLOCK: usize = LANE_WIDTH * GROUP + GROUP;

/// Maps a row value to a `u64` that compares (unsigned) in the same
/// strict order as the `f64` does under IEEE `<`: flip all bits of
/// negatives, set the sign bit of non-negatives. `-0.0` is folded into
/// `+0.0` first (IEEE treats them as equal, their raw bit patterns do
/// not), and NaN maps to `u64::MAX`, which sits above every threshold
/// key — so `key(v) < key(thr)` is false exactly when `v < thr` is,
/// NaN included. This is what lets [`FlatGbt::walk_group_fixed`] route
/// with one integer compare instead of an FP compare + flag
/// materialization.
#[inline]
fn lane_key(v: f64) -> u64 {
    if v.is_nan() {
        return u64::MAX;
    }
    let raw = v.to_bits();
    // Both zeros have all bits clear apart from (possibly) the sign bit;
    // dropping it folds `-0.0` into `+0.0` without an FP equality test.
    let bits = if raw << 1 == 0 { 0 } else { raw };
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | 1 << 63
    }
}

/// [`lane_key`] for stored split thresholds: a NaN threshold (the leaf
/// self-loop sentinel, and the only NaN the tables ever hold) becomes
/// key `0`, which no value key is unsigned-below — every row routes
/// right/self, exactly as IEEE `v < NaN` (always false) dictates. A
/// finite threshold never maps to `0` (that key would require the bit
/// pattern of a negative NaN), so the sentinel is unambiguous.
#[inline]
fn threshold_key(thr: f64) -> u64 {
    if thr.is_nan() {
        0
    } else {
        lane_key(thr)
    }
}

/// [`transpose_lanes`] with the feature axis padded to [`LANE_WIDTH`]
/// slots and every value pre-mapped through [`lane_key`]; the padding
/// slots are never read (every tested feature index is `< width`), they
/// only make the per-group extent a compile-time constant.
fn transpose_lanes_fixed(rows: &[f64], width: usize, groups: usize) -> Vec<u64> {
    let mut lanes = vec![0u64; groups * LANE_BLOCK];
    for g in 0..groups {
        for j in 0..GROUP {
            let row = &rows[(g * GROUP + j) * width..(g * GROUP + j + 1) * width];
            for (f, &v) in row.iter().enumerate() {
                lanes[g * LANE_BLOCK + f * GROUP + j] = lane_key(v);
            }
        }
    }
    lanes
}

/// One lockstep level of the bounds-check-free walk: every lane reads
/// its node's metadata, compares its row key against the threshold key,
/// and steps to the `<` child or its `+ 1` sibling. Shared by the
/// const-depth and runtime-depth walks so there is exactly one copy of
/// the routing arithmetic.
#[inline(always)]
fn walk_step(
    meta: &[u16; PAD_TREE],
    thr: &[u64; PAD_TREE],
    lanes: &[u64; LANE_BLOCK],
    idx: &mut [usize; GROUP],
) {
    for (j, slot) in idx.iter_mut().enumerate() {
        let m = meta[*slot];
        let child = (m >> 8) as usize;
        let v = lanes[(m & 0xff) as usize + j];
        // Key order mirrors IEEE `<` with NaN on the right, so this
        // select is exactly `left + !(row < thr)`.
        *slot = if v < thr[*slot] { child } else { child + 1 };
    }
}

/// A `GradientBoost` ensemble flattened into contiguous struct-of-arrays
/// node tables: all trees concatenated, tree `t` spanning
/// `roots[t]..roots[t + 1]`, child indices absolute. Leaves are
/// self-looping (`left == right == self`), which lets the batch kernel
/// walk every row for a tree's full depth unconditionally — rows that
/// reach a leaf early just spin in place, so the walk has no per-row
/// termination branch at all.
///
/// `packed`, `value`, `packed_roots`, `depth` and the `*_pad` padded
/// tables are *derived* (not serialized): recomputed identically from
/// the node arrays on both
/// capture and artifact decode, so two models with equal serialized
/// arrays always carry equal kernels — equality compares only the
/// serialized fields.
#[derive(Debug, Clone)]
pub struct FlatGbt {
    pub(crate) n_features: u32,
    pub(crate) base_score: f64,
    /// `n_trees + 1` prefix offsets into the node tables.
    pub(crate) roots: Vec<u32>,
    /// Feature tested per node; [`LEAF`] marks a leaf.
    pub(crate) feature: Vec<u32>,
    /// Split threshold per node; for leaves the pre-scaled contribution.
    pub(crate) threshold: Vec<f64>,
    /// Absolute node index of the `<` child (self for leaves).
    pub(crate) left: Vec<u32>,
    /// Absolute node index of the `≥` child (self for leaves).
    pub(crate) right: Vec<u32>,
    /// Derived: breadth-first renumbered nodes for the lockstep kernel.
    pub(crate) packed: Vec<PackedNode>,
    /// Derived: pre-scaled leaf payload per packed node (0 for splits),
    /// read once per walk at the final gather.
    pub(crate) value: Vec<f64>,
    /// Derived: packed-table root index per tree (reachable nodes only,
    /// so these can differ from `roots` on pathological inputs).
    pub(crate) packed_roots: Vec<u32>,
    /// Derived: per-tree maximum root→leaf depth in edges — the lockstep
    /// walk's unconditional iteration count.
    pub(crate) depth: Vec<u32>,
    /// Derived: [`PAD_TREE`]-strided tree-relative split thresholds as
    /// [`threshold_key`] sort keys (`0` for leaves and padding; empty
    /// when some tree exceeds [`PAD_STRIDE`] nodes, making the kernel
    /// fall back to `packed`).
    pub(crate) thr_pad: Vec<u64>,
    /// Derived: companion to `thr_pad` — one `u16` per node packing the
    /// tree-relative `<` child in the high byte and the *pre-scaled*
    /// lane offset `feat · GROUP` in the low byte. Both being single
    /// bytes is what makes the walk step bounds-check-free: a byte
    /// index (≤ 255, plus the `+ 1` right-child or `+ j` lane
    /// adjustment) is in range of the [`PAD_TREE`]- and
    /// [`LANE_BLOCK`]-sized arrays by construction.
    pub(crate) meta_pad: Vec<u16>,
    /// Derived: leaf payloads aligned with `thr_pad`/`meta_pad`.
    pub(crate) value_pad: Vec<f64>,
}

impl PartialEq for FlatGbt {
    fn eq(&self, other: &Self) -> bool {
        // Derived tables are a pure function of the serialized fields
        // (and `packed` holds NaN leaf sentinels, which would poison a
        // field-wise comparison), so equality is over serialized state.
        self.n_features == other.n_features
            && self.base_score == other.base_score
            && self.roots == other.roots
            && self.feature == other.feature
            && self.threshold == other.threshold
            && self.left == other.left
            && self.right == other.right
    }
}

/// One node as the lockstep kernel reads it — a 16-byte record so node
/// loads never straddle cache lines and each walk step costs one node
/// load plus one row load. Routing is arithmetic, not selected:
/// `next = left + (row[feat] < threshold ? 0 : 1)`, which works because
/// the breadth-first renumbering in [`derive_gbt_tables`] places every
/// split's right child at `left + 1`. Leaves store `threshold = NaN`
/// (every comparison routes right) and `left = self − 1`, so a parked
/// row keeps stepping to itself; their payload lives in the side `value`
/// table read at the final gather.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PackedNode {
    pub(crate) threshold: f64,
    pub(crate) feat: u32,
    pub(crate) left: u32,
}

/// The derived kernel tables of a GBT ensemble; see [`derive_gbt_tables`].
pub(crate) struct GbtKernelTables {
    pub(crate) packed: Vec<PackedNode>,
    pub(crate) value: Vec<f64>,
    pub(crate) roots: Vec<u32>,
    pub(crate) depth: Vec<u32>,
    pub(crate) thr_pad: Vec<u64>,
    pub(crate) meta_pad: Vec<u16>,
    pub(crate) value_pad: Vec<f64>,
}

/// Maximum reachable nodes per tree for the padded kernel tables —
/// always satisfied by the paper's depth ≤ 7 models. The bound matters
/// because it keeps every tree-relative child index a single *byte*,
/// which is what lets the kernel walk without any bounds checks.
pub(crate) const PAD_STRIDE: usize = 128;

/// Per-tree stride of the padded kernel tables. When every tree fits
/// (≤ [`PAD_STRIDE`] reachable nodes), tree `t` occupies exactly
/// `t·PAD_TREE..(t+1)·PAD_TREE` of `thr_pad`/`meta_pad`/`value_pad`
/// with *tree-relative* child indices and the root at slot 0. The batch
/// kernel views each tree as a `&[_; PAD_TREE]` array; since a walk
/// index is a child byte (≤ 255) plus at most 1, `PAD_TREE = 257`
/// makes every node access provably in bounds with no masking at all —
/// the compiler drops the per-step bounds check from the index type
/// alone. Deeper ensembles keep the unpadded absolute-index kernel.
pub(crate) const PAD_TREE: usize = 257;

/// Derivation-internal narrowing. Everything narrowed while deriving the
/// kernel tables was already bounds-validated by [`FlatGbt::compile`] or
/// the artifact decoder (node counts fit `u32`, padded tree positions
/// fit a byte), so the saturating fallback is unreachable — it only
/// keeps the derivation panic-free on arbitrary inputs.
#[inline]
fn nar32(v: usize) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// See [`nar32`].
#[inline]
fn nar16(v: usize) -> u16 {
    u16::try_from(v).unwrap_or(u16::MAX)
}

/// Computes the derived kernel tables from validated node arrays by
/// renumbering each tree breadth-first: a split's children are enqueued
/// together, so in the packed table the right child always sits at
/// `left + 1` and the kernel routes with an add instead of a select.
/// The BFS touches each node at most once because validation rejects
/// tables where any node is referenced by more than one split
/// (`compile` and the artifact decoder both enforce this), and per-node
/// depth falls out of the same pass since parents are emitted before
/// their children.
pub(crate) fn derive_gbt_tables(
    roots: &[u32],
    feature: &[u32],
    threshold: &[f64],
    left: &[u32],
    right: &[u32],
) -> GbtKernelTables {
    let n_trees = roots.len() - 1;
    let mut packed = Vec::with_capacity(feature.len());
    let mut value = Vec::with_capacity(feature.len());
    let mut packed_roots = Vec::with_capacity(n_trees);
    let mut depth = Vec::with_capacity(n_trees);
    let mut thr_pad = Vec::with_capacity(n_trees * PAD_TREE);
    let mut meta_pad = Vec::with_capacity(n_trees * PAD_TREE);
    let mut value_pad = Vec::with_capacity(n_trees * PAD_TREE);
    let mut all_fit = true;
    let mut order: Vec<usize> = Vec::new();
    let mut new_of: Vec<u32> = Vec::new();
    let mut node_depth: Vec<u32> = Vec::new();
    for t in 0..n_trees {
        let (start, end) = (roots[t] as usize, roots[t + 1] as usize);
        let base = packed.len();
        packed_roots.push(nar32(base));
        order.clear();
        order.push(start);
        let mut head = 0;
        while head < order.len() {
            let i = order[head];
            head += 1;
            if feature[i] != LEAF {
                order.push(left[i] as usize);
                order.push(right[i] as usize);
            }
        }
        new_of.clear();
        new_of.resize(end - start, 0);
        for (k, &i) in order.iter().enumerate() {
            new_of[i - start] = nar32(base + k);
        }
        node_depth.clear();
        node_depth.resize(order.len(), 0);
        let mut max = 0u32;
        for (k, &i) in order.iter().enumerate() {
            if feature[i] == LEAF {
                packed.push(PackedNode {
                    threshold: f64::NAN,
                    feat: 0,
                    left: nar32((base + k).saturating_sub(1)),
                });
                value.push(threshold[i]);
                max = max.max(node_depth[k]);
            } else {
                let l = new_of[left[i] as usize - start];
                packed.push(PackedNode {
                    threshold: threshold[i],
                    feat: feature[i],
                    left: l,
                });
                value.push(0.0);
                let lk = l as usize - base;
                node_depth[lk] = node_depth[k] + 1;
                node_depth[lk + 1] = node_depth[k] + 1;
            }
        }
        depth.push(max);
        // Padded per-tree copy with tree-relative indices (root at 0),
        // for the bounds-check-free fixed-stride kernel. `meta` packs
        // the `<` child in the high byte and the lane offset
        // `feat · GROUP` in the low byte (both ≤ 255 when the tree fits
        // [`PAD_STRIDE`] nodes and the model fits [`LANE_WIDTH`]
        // features — the only configuration that runs this kernel).
        if all_fit && order.len() <= PAD_STRIDE {
            for (k, &i) in order.iter().enumerate() {
                if feature[i] == LEAF {
                    // Sentinel key 0: no lane key is unsigned-below it,
                    // so a parked row keeps stepping to `self − 1 + 1`.
                    thr_pad.push(0);
                    meta_pad.push(nar16(k.saturating_sub(1)) << 8);
                    value_pad.push(threshold[i]);
                } else {
                    let rel = nar16(new_of[left[i] as usize - start] as usize - base);
                    thr_pad.push(threshold_key(threshold[i]));
                    // `feat · GROUP ≤ 248` fits the byte for any
                    // `feat < LANE_WIDTH`. For models wider than that
                    // the saturated byte is garbage, but this kernel is
                    // then never selected (`accumulate_block` checks
                    // width).
                    let lane_off = u8::try_from(feature[i] as usize * GROUP).unwrap_or(0);
                    meta_pad.push((rel << 8) | u16::from(lane_off));
                    value_pad.push(0.0);
                }
            }
            for _ in order.len()..PAD_TREE {
                thr_pad.push(0);
                meta_pad.push(0);
                value_pad.push(0.0);
            }
        } else {
            all_fit = false;
        }
    }
    if !all_fit {
        thr_pad = Vec::new();
        meta_pad = Vec::new();
        value_pad = Vec::new();
    }
    GbtKernelTables {
        packed,
        value,
        roots: packed_roots,
        depth,
        thr_pad,
        meta_pad,
        value_pad,
    }
}

impl FlatGbt {
    /// Flattens a fitted booster. Fails (typed, no panic) on an unfitted
    /// model or any structural violation of the node-table invariants.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidModel`] with a description of the violation.
    pub fn compile(model: &GradientBoost) -> Result<Self, ServeError> {
        if model.n_trees() == 0 || model.n_features() == 0 {
            return Err(ServeError::InvalidModel(
                "cannot flatten an unfitted GradientBoost".to_string(),
            ));
        }
        let n_features = narrow(model.n_features(), "feature count")?;
        let lr = model.params().learning_rate;
        let mut roots = Vec::with_capacity(model.n_trees() + 1);
        roots.push(0u32);
        let mut feature = Vec::new();
        let mut threshold = Vec::new();
        let mut left = Vec::new();
        let mut right = Vec::new();
        for tree in model.trees() {
            let base = feature.len();
            let n_nodes = tree.n_nodes();
            let mut referenced = vec![false; n_nodes];
            for (i, node) in tree.nodes().into_iter().enumerate() {
                match node {
                    NodeView::Leaf { weight } => {
                        feature.push(LEAF);
                        // Same bits as the live path's per-prediction
                        // `learning_rate * weight` (see module docs).
                        threshold.push(lr * weight);
                        // Self-looping children: the fixed-depth lockstep
                        // walk parks early rows here (struct docs).
                        let me = narrow(base + i, "node index")?;
                        left.push(me);
                        right.push(me);
                    }
                    NodeView::Split {
                        feature: f,
                        threshold: t,
                        left: l,
                        right: r,
                    } => {
                        if f >= model.n_features() {
                            return Err(ServeError::InvalidModel(format!(
                                "split on feature {f} but model has {} features",
                                model.n_features()
                            )));
                        }
                        if l <= i || r <= i || l >= n_nodes || r >= n_nodes {
                            return Err(ServeError::InvalidModel(format!(
                                "node {i}: children ({l}, {r}) must lie in ({i}, {n_nodes})"
                            )));
                        }
                        // Each node hangs off at most one split — the
                        // breadth-first renumbering relies on it (tree,
                        // not DAG).
                        if l == r || referenced[l] || referenced[r] {
                            return Err(ServeError::InvalidModel(format!(
                                "node {i}: children ({l}, {r}) reuse a node"
                            )));
                        }
                        referenced[l] = true;
                        referenced[r] = true;
                        feature.push(narrow(f, "feature index")?);
                        threshold.push(t);
                        left.push(narrow(base + l, "node index")?);
                        right.push(narrow(base + r, "node index")?);
                    }
                }
            }
            roots.push(narrow(feature.len(), "node-table length")?);
        }
        let tables = derive_gbt_tables(&roots, &feature, &threshold, &left, &right);
        Ok(FlatGbt {
            n_features,
            base_score: model.base_score(),
            roots,
            feature,
            threshold,
            left,
            right,
            packed: tables.packed,
            value: tables.value,
            packed_roots: tables.roots,
            depth: tables.depth,
            thr_pad: tables.thr_pad,
            meta_pad: tables.meta_pad,
            value_pad: tables.value_pad,
        })
    }

    /// Number of trees in the table.
    pub fn n_trees(&self) -> usize {
        self.roots.len() - 1
    }

    /// Width the table expects of every row.
    pub fn n_features(&self) -> usize {
        self.n_features as usize
    }

    /// One tree's contribution for one row — the same walk
    /// `GradientTree::predict_row` performs, over the flat table.
    #[inline]
    fn tree_contribution(&self, root: usize, row: &[f64]) -> f64 {
        let mut idx = root;
        loop {
            let f = self.feature[idx];
            if f == LEAF {
                return self.threshold[idx];
            }
            idx = if row[f as usize] < self.threshold[idx] {
                self.left[idx] as usize
            } else {
                self.right[idx] as usize
            };
        }
    }

    /// Scalar reference path: ensemble score for one row, accumulated in
    /// tree order exactly like the live `predict_row`.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = self.base_score;
        for t in 0..self.n_trees() {
            acc += self.tree_contribution(self.roots[t] as usize, row);
        }
        acc
    }

    /// [`GROUP`] rows walked through one tree in lockstep, every row for
    /// exactly `depth` unconditional iterations (early leaves self-loop).
    /// Each iteration issues [`GROUP`] independent load→compare→load
    /// chains, so the walk is bound by throughput, not chain latency —
    /// this interleaving is where the batch kernel's speed-up over
    /// per-chip dispatch comes from. Routing is branch-free arithmetic
    /// over the BFS-renumbered [`PackedNode`] table:
    /// `next = left + (row < threshold ? 0 : 1)`, which sends NaN right
    /// exactly like the live walk and parks leaf-bound rows on the
    /// leaf's NaN-threshold self-loop.
    // `!(v < thr)` is NOT `v >= thr`: NaN (row value or leaf sentinel)
    // must take the right/self branch, and only the negation does that.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn walk_group(&self, t: usize, lanes: &[f64], out: &mut [f64]) {
        let root = self.packed_roots[t] as usize;
        let nodes = self.packed.as_slice();
        let mut idx = [root; GROUP];
        for _ in 0..self.depth[t] {
            for (j, slot) in idx.iter_mut().enumerate() {
                let n = nodes[*slot];
                let v = lanes[n.feat as usize * GROUP + j];
                *slot = n.left as usize + usize::from(!(v < n.threshold));
            }
        }
        for (acc, i) in out.iter_mut().zip(idx) {
            *acc += self.value[i];
        }
    }

    /// The fully bounds-check-free walk over the [`PAD_TREE`]-strided
    /// struct-of-arrays tables and [`LANE_BLOCK`]-sized lane scratch.
    /// No index is ever masked: a walk position is a child *byte* (from
    /// `meta`'s high byte) plus at most 1, so it is `< PAD_TREE = 257`
    /// by its type, and a lane index is a pre-scaled offset byte plus a
    /// constant `j < GROUP`, so it is `< LANE_BLOCK`. Because both the
    /// lane values and the thresholds are [`lane_key`]/[`threshold_key`]
    /// sort keys, routing is one *unsigned integer* compare whose carry
    /// feeds the child-index add directly (cmp + sbb on x86) — no FP
    /// compare, no flag materialization — bringing a step down to
    /// 6 fused µops / 3 loads on a 4-wide core, which is what bounds
    /// the whole batch. This is the kernel production-scale models
    /// actually run (depth ≤ 7, ≤ [`LANE_WIDTH`] features).
    /// The walk is monomorphized per tree depth (`D` is the loop bound)
    /// so the level loop fully unrolls: no live loop counter, no
    /// end-of-iteration register shuffle, and all [`GROUP`] walk
    /// positions stay in registers instead of spilling. Trees deeper
    /// than the dispatch table (pathological chains — never produced by
    /// the paper's depth ≤ 7 fits) take the runtime-depth twin below.
    /// One tree's padded tables as fixed-size arrays — the [`PAD_TREE`]
    /// stride means `as_chunks` lands tree `t` exactly at chunk `t`, and
    /// the array types carry the length proof the walk's bounds elision
    /// rests on.
    #[inline]
    fn padded_tree(&self, t: usize) -> (&[u64; PAD_TREE], &[u16; PAD_TREE], &[f64; PAD_TREE]) {
        (
            &self.thr_pad.as_chunks::<PAD_TREE>().0[t],
            &self.meta_pad.as_chunks::<PAD_TREE>().0[t],
            &self.value_pad.as_chunks::<PAD_TREE>().0[t],
        )
    }

    #[inline]
    fn walk_group_fixed<const D: usize>(
        &self,
        t: usize,
        lanes: &[u64; LANE_BLOCK],
        out: &mut [f64],
    ) {
        let (thr, meta, values) = self.padded_tree(t);
        let mut idx = [0usize; GROUP];
        for _ in 0..D {
            walk_step(meta, thr, lanes, &mut idx);
        }
        for (acc, i) in out.iter_mut().zip(idx) {
            *acc += values[i];
        }
    }

    /// Runtime-depth twin of [`Self::walk_group_fixed`] for trees deeper
    /// than the const dispatch covers.
    #[inline]
    fn walk_group_fixed_deep(&self, t: usize, lanes: &[u64; LANE_BLOCK], out: &mut [f64]) {
        let (thr, meta, values) = self.padded_tree(t);
        let mut idx = [0usize; GROUP];
        for _ in 0..self.depth[t] {
            walk_step(meta, thr, lanes, &mut idx);
        }
        for (acc, i) in out.iter_mut().zip(idx) {
            *acc += values[i];
        }
    }

    /// Batch kernel over a gathered row block (`rows` is row-major,
    /// `out.len()` rows of `width` columns). Full [`GROUP`]s are first
    /// repacked lane-major by [`transpose_lanes`]; trees then run in the
    /// outer loop so each tree's tables stay cache-hot across the whole
    /// block (the scalar walk mops up the remainder rows). Each row still
    /// accumulates its contributions in tree order, so every `out[j]`
    /// carries the same bits as [`Self::predict_row`] on row `j` — the
    /// transpose moves values, never changes or reorders the arithmetic.
    pub(crate) fn accumulate_block(&self, rows: &[f64], width: usize, out: &mut [f64]) {
        debug_assert_eq!(rows.len(), width * out.len());
        out.fill(self.base_score);
        let groups = out.len() / GROUP;
        let tail = groups * GROUP;
        let fixed = !self.thr_pad.is_empty() && width <= LANE_WIDTH;
        if fixed {
            let lanes = transpose_lanes_fixed(rows, width, groups);
            let lane_groups = lanes.as_chunks::<LANE_BLOCK>().0;
            for t in 0..self.n_trees() {
                for (g, group_lanes) in lane_groups.iter().enumerate() {
                    let start = g * GROUP;
                    let group_out = &mut out[start..start + GROUP];
                    // Depth dispatch is per tree, so this match is
                    // perfectly predicted within the group loop.
                    match self.depth[t] as usize {
                        0 => self.walk_group_fixed::<0>(t, group_lanes, group_out),
                        1 => self.walk_group_fixed::<1>(t, group_lanes, group_out),
                        2 => self.walk_group_fixed::<2>(t, group_lanes, group_out),
                        3 => self.walk_group_fixed::<3>(t, group_lanes, group_out),
                        4 => self.walk_group_fixed::<4>(t, group_lanes, group_out),
                        5 => self.walk_group_fixed::<5>(t, group_lanes, group_out),
                        6 => self.walk_group_fixed::<6>(t, group_lanes, group_out),
                        7 => self.walk_group_fixed::<7>(t, group_lanes, group_out),
                        8 => self.walk_group_fixed::<8>(t, group_lanes, group_out),
                        _ => self.walk_group_fixed_deep(t, group_lanes, group_out),
                    }
                }
                self.accumulate_tail(t, rows, width, tail, out);
            }
        } else {
            let lanes = transpose_lanes(rows, width, groups);
            for t in 0..self.n_trees() {
                for g in 0..groups {
                    let start = g * GROUP;
                    let group_lanes = &lanes[start * width..(start + GROUP) * width];
                    self.walk_group(t, group_lanes, &mut out[start..start + GROUP]);
                }
                self.accumulate_tail(t, rows, width, tail, out);
            }
        }
    }

    /// Scalar mop-up for the `out.len() % GROUP` rows past the last full
    /// group, keeping their tree-order accumulation identical to the
    /// lockstep rows'.
    #[inline]
    fn accumulate_tail(&self, t: usize, rows: &[f64], width: usize, tail: usize, out: &mut [f64]) {
        let root = self.roots[t] as usize;
        for (acc, row) in out[tail..]
            .iter_mut()
            .zip(rows[tail * width..].chunks_exact(width))
        {
            *acc += self.tree_contribution(root, row);
        }
    }
}

/// An `ObliviousBoost` ensemble compiled into per-tree leaf lookup
/// tables: level tests and `2^depth` pre-scaled LUTs, all trees
/// concatenated with prefix offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatOblivious {
    pub(crate) n_features: u32,
    pub(crate) base_score: f64,
    /// Feature tested per level, all trees concatenated.
    pub(crate) level_feat: Vec<u32>,
    /// Threshold per level (bit set when `row[feat] > thr`).
    pub(crate) level_thr: Vec<f64>,
    /// `n_trees + 1` prefix offsets into the level tables.
    pub(crate) level_off: Vec<u32>,
    /// Pre-scaled leaf values, all trees concatenated.
    pub(crate) lut: Vec<f64>,
    /// `n_trees + 1` prefix offsets into `lut`.
    pub(crate) lut_off: Vec<u32>,
}

impl FlatOblivious {
    /// Compiles a fitted booster into LUT form.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidModel`] on an unfitted model or a tree whose
    /// tables violate the `leaf_values.len() == 2^levels` invariant.
    pub fn compile(model: &ObliviousBoost) -> Result<Self, ServeError> {
        if model.n_trees() == 0 || model.n_features() == 0 {
            return Err(ServeError::InvalidModel(
                "cannot compile an unfitted ObliviousBoost".to_string(),
            ));
        }
        let n_features = narrow(model.n_features(), "feature count")?;
        let lr = model.params().learning_rate;
        let mut level_feat = Vec::new();
        let mut level_thr = Vec::new();
        let mut level_off = vec![0u32];
        let mut lut = Vec::new();
        let mut lut_off = vec![0u32];
        for (levels, leaf_values) in model.tree_tables() {
            if levels.len() > MAX_OBLIVIOUS_DEPTH {
                return Err(ServeError::InvalidModel(format!(
                    "oblivious tree has {} levels (max {MAX_OBLIVIOUS_DEPTH})",
                    levels.len()
                )));
            }
            if leaf_values.len() != 1usize << levels.len() {
                return Err(ServeError::InvalidModel(format!(
                    "oblivious tree: {} leaves for {} levels",
                    leaf_values.len(),
                    levels.len()
                )));
            }
            for &(f, thr) in levels {
                if f >= model.n_features() {
                    return Err(ServeError::InvalidModel(format!(
                        "level tests feature {f} but model has {} features",
                        model.n_features()
                    )));
                }
                level_feat.push(narrow(f, "feature index")?);
                level_thr.push(thr);
            }
            // Same bits as the live `learning_rate * leaf` (module docs).
            lut.extend(leaf_values.iter().map(|&v| lr * v));
            level_off.push(narrow(level_feat.len(), "level-table length")?);
            lut_off.push(narrow(lut.len(), "LUT length")?);
        }
        Ok(FlatOblivious {
            n_features,
            base_score: model.base_score(),
            level_feat,
            level_thr,
            level_off,
            lut,
            lut_off,
        })
    }

    /// Number of trees in the table.
    pub fn n_trees(&self) -> usize {
        self.level_off.len() - 1
    }

    /// Width the table expects of every row.
    pub fn n_features(&self) -> usize {
        self.n_features as usize
    }

    /// One tree's pre-scaled leaf for one row: the comparison bitmask of
    /// `ObliviousTree::leaf_index`, rebuilt branch-free.
    #[inline]
    fn tree_contribution(&self, t: usize, row: &[f64]) -> f64 {
        let lo = self.level_off[t] as usize;
        let hi = self.level_off[t + 1] as usize;
        let mut idx = 0usize;
        for (bit, k) in (lo..hi).enumerate() {
            let test = row[self.level_feat[k] as usize] > self.level_thr[k];
            idx |= usize::from(test) << bit;
        }
        self.lut[self.lut_off[t] as usize + idx]
    }

    /// Scalar reference path: ensemble score for one row, accumulated in
    /// tree order exactly like the live `predict_row`.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = self.base_score;
        for t in 0..self.n_trees() {
            acc += self.tree_contribution(t, row);
        }
        acc
    }

    /// Batch kernel over a gathered row block; see
    /// [`FlatGbt::accumulate_block`] for the layout and exactness notes.
    /// Levels run in the outer loop over each [`GROUP`]-row group, so one
    /// `(feature, threshold)` pair is broadcast across all rows — and in
    /// the lane-major scratch the [`GROUP`] compared values sit
    /// contiguously, so the comparisons vectorize. Only the final LUT
    /// load depends on a row's accumulated bitmask.
    pub(crate) fn accumulate_block(&self, rows: &[f64], width: usize, out: &mut [f64]) {
        debug_assert_eq!(rows.len(), width * out.len());
        out.fill(self.base_score);
        let groups = out.len() / GROUP;
        let tail = groups * GROUP;
        let lanes = transpose_lanes(rows, width, groups);
        for t in 0..self.n_trees() {
            let (ls, le) = (self.level_off[t] as usize, self.level_off[t + 1] as usize);
            let off = self.lut_off[t] as usize;
            for g in 0..groups {
                let start = g * GROUP;
                let group_lanes = &lanes[start * width..(start + GROUP) * width];
                let mut idx = [0usize; GROUP];
                for (bit, k) in (ls..le).enumerate() {
                    let f = self.level_feat[k] as usize;
                    let thr = self.level_thr[k];
                    for (j, slot) in idx.iter_mut().enumerate() {
                        *slot |= usize::from(group_lanes[f * GROUP + j] > thr) << bit;
                    }
                }
                for (acc, i) in out[start..start + GROUP].iter_mut().zip(idx) {
                    *acc += self.lut[off + i];
                }
            }
            for (acc, row) in out[tail..]
                .iter_mut()
                .zip(rows[tail * width..].chunks_exact(width))
            {
                *acc += self.tree_contribution(t, row);
            }
        }
    }
}
