//! The serving engine: a captured model plus `serve_batch`.

use crate::flat::{FlatGbt, FlatOblivious};
use std::error::Error;
use std::fmt;
use vmin_conformal::{Cqr, PredictionInterval};
use vmin_data::Standardizer;
use vmin_linalg::Matrix;
use vmin_models::{GradientBoost, ObliviousBoost};

/// Typed serving/capture failure. Artifact *decoding* failures are the
/// separate [`crate::ArtifactError`]; this covers live-model capture and
/// batch-shape problems.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The CQR pair has no calibration quantile yet (`calibrate` never ran).
    NotCalibrated,
    /// A model failed flattening validation (unfitted, inconsistent
    /// shapes, structural invariant violated).
    InvalidModel(String),
    /// A batch's column count differs from the captured model's width.
    ShapeMismatch {
        /// Width the captured model expects.
        expected: usize,
        /// Width the batch actually has.
        got: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NotCalibrated => {
                write!(f, "CQR pair is not calibrated; no q-hat to capture")
            }
            ServeError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(f, "batch has {got} columns, model expects {expected}")
            }
        }
    }
}

impl Error for ServeError {}

/// Captured standardizer state, applied row-wise before the kernels with
/// the same `(v - mean) / scale` expression `Standardizer::transform_row`
/// evaluates — element-for-element identical bits.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ScalerState {
    pub(crate) means: Vec<f64>,
    pub(crate) scales: Vec<f64>,
}

/// The flattened quantile pair, one variant per booster family. The
/// ensembles are boxed: each `Flat*` carries its derived kernel tables
/// inline, so the unboxed variants would be hundreds of bytes apart.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FlatPair {
    /// XGBoost-style pair.
    Gbt {
        /// Lower-quantile ensemble.
        lo: Box<FlatGbt>,
        /// Upper-quantile ensemble.
        hi: Box<FlatGbt>,
    },
    /// CatBoost-style pair.
    Oblivious {
        /// Lower-quantile ensemble.
        lo: Box<FlatOblivious>,
        /// Upper-quantile ensemble.
        hi: Box<FlatOblivious>,
    },
}

impl FlatPair {
    fn n_features(&self) -> usize {
        match self {
            FlatPair::Gbt { lo, .. } => lo.n_features(),
            FlatPair::Oblivious { lo, .. } => lo.n_features(),
        }
    }
}

/// A deployable snapshot of a fitted, calibrated CQR pair: flattened
/// kernels, `α`, `q̂` and optional standardizer state. Build one from a
/// live pair ([`Self::from_gbt_cqr`] / [`Self::from_oblivious_cqr`]) or
/// reload one from `vmin-artifact/v1` bytes ([`Self::from_bytes`]); both
/// serve through [`Self::serve_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeModel {
    pub(crate) pair: FlatPair,
    pub(crate) alpha: f64,
    pub(crate) qhat: f64,
    pub(crate) scaler: Option<ScalerState>,
}

impl ServeModel {
    fn validate(
        pair: FlatPair,
        alpha: f64,
        qhat: f64,
        scaler: Option<ScalerState>,
    ) -> Result<Self, ServeError> {
        let (lo_w, hi_w) = match &pair {
            FlatPair::Gbt { lo, hi } => (lo.n_features(), hi.n_features()),
            FlatPair::Oblivious { lo, hi } => (lo.n_features(), hi.n_features()),
        };
        if lo_w != hi_w {
            return Err(ServeError::InvalidModel(format!(
                "quantile pair disagrees on width: lo {lo_w} vs hi {hi_w}"
            )));
        }
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(ServeError::InvalidModel(format!(
                "alpha must be in (0, 1), got {alpha}"
            )));
        }
        if qhat.is_nan() {
            return Err(ServeError::InvalidModel("q-hat is NaN".to_string()));
        }
        if let Some(s) = &scaler {
            if s.means.len() != lo_w || s.scales.len() != lo_w {
                return Err(ServeError::InvalidModel(format!(
                    "scaler covers {} columns, models expect {lo_w}",
                    s.means.len()
                )));
            }
            if s.scales.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
                return Err(ServeError::InvalidModel(
                    "scaler scales must be finite and positive".to_string(),
                ));
            }
        }
        Ok(ServeModel {
            pair,
            alpha,
            qhat,
            scaler,
        })
    }

    /// Captures a fitted, calibrated XGBoost-style pair (plus the
    /// standardizer its features were transformed with, when one exists).
    ///
    /// # Errors
    ///
    /// [`ServeError::NotCalibrated`] before calibration;
    /// [`ServeError::InvalidModel`] when flattening fails.
    pub fn from_gbt_cqr(
        cqr: &Cqr<GradientBoost, GradientBoost>,
        scaler: Option<&Standardizer>,
    ) -> Result<Self, ServeError> {
        let qhat = cqr.qhat().ok_or(ServeError::NotCalibrated)?;
        let pair = FlatPair::Gbt {
            lo: Box::new(FlatGbt::compile(cqr.lo_model())?),
            hi: Box::new(FlatGbt::compile(cqr.hi_model())?),
        };
        Self::validate(pair, cqr.alpha(), qhat, scaler.map(capture_scaler))
    }

    /// Captures a fitted, calibrated CatBoost-style pair.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::from_gbt_cqr`].
    pub fn from_oblivious_cqr(
        cqr: &Cqr<ObliviousBoost, ObliviousBoost>,
        scaler: Option<&Standardizer>,
    ) -> Result<Self, ServeError> {
        let qhat = cqr.qhat().ok_or(ServeError::NotCalibrated)?;
        let pair = FlatPair::Oblivious {
            lo: Box::new(FlatOblivious::compile(cqr.lo_model())?),
            hi: Box::new(FlatOblivious::compile(cqr.hi_model())?),
        };
        Self::validate(pair, cqr.alpha(), qhat, scaler.map(capture_scaler))
    }

    /// Reassembles a decoded artifact; shared validation with capture.
    pub(crate) fn from_parts(
        pair: FlatPair,
        alpha: f64,
        qhat: f64,
        scaler: Option<ScalerState>,
    ) -> Result<Self, ServeError> {
        Self::validate(pair, alpha, qhat, scaler)
    }

    /// Width every served row must have.
    pub fn n_features(&self) -> usize {
        self.pair.n_features()
    }

    /// The captured miscoverage level `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The captured calibration quantile `q̂`.
    pub fn qhat(&self) -> f64 {
        self.qhat
    }

    /// Copies row `i` of `x` into `dst`, standardizing when the artifact
    /// captured a scaler (same per-element expression as the training-side
    /// `transform_row`).
    fn gather_row(&self, x: &Matrix, i: usize, dst: &mut [f64]) {
        let row = x.row(i);
        match &self.scaler {
            None => dst.copy_from_slice(row),
            Some(s) => {
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = (row[j] - s.means[j]) / s.scales[j];
                }
            }
        }
    }

    /// Serves conformal intervals for every row of `x`, processing
    /// `block_rows` rows per block (clamped to ≥ 1) and fanning blocks out
    /// via `vmin-par` — work is partitioned by block index and collected
    /// in block order, so outputs are bit-identical at any `VMIN_THREADS`
    /// and any block size. With `VMIN_SERVE=0` the rows walk the scalar
    /// reference path one at a time instead; outputs are byte-identical
    /// either way (pure path selection).
    ///
    /// Each interval is `[lo(x) − q̂, hi(x) + q̂]` built through
    /// `PredictionInterval::new`, crossed-endpoint swap included — the
    /// exact expression `Cqr::predict_interval` evaluates.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShapeMismatch`] when `x` has the wrong width.
    pub fn serve_batch(
        &self,
        x: &Matrix,
        block_rows: usize,
    ) -> Result<Vec<PredictionInterval>, ServeError> {
        let d = self.n_features();
        if x.cols() != d {
            return Err(ServeError::ShapeMismatch {
                expected: d,
                got: x.cols(),
            });
        }
        let _span = vmin_trace::span("serve.batch");
        vmin_trace::counter_add("serve.batches", 1);
        let n = x.rows();
        vmin_trace::counter_add("serve.rows", n as u64);
        if n == 0 {
            return Ok(Vec::new());
        }
        let block = block_rows.max(1);
        let mut bands = vec![(0.0f64, 0.0f64); n];
        if crate::serve_enabled() {
            vmin_trace::counter_add("serve.blocks", n.div_ceil(block) as u64);
            let pair = &self.pair;
            vmin_par::par_chunks_mut(&mut bands, block, 2, |ci, chunk| {
                let start = ci * block;
                let mut rows = vec![0.0f64; chunk.len() * d];
                for (j, dst) in rows.chunks_mut(d).enumerate() {
                    self.gather_row(x, start + j, dst);
                }
                let mut lo_acc = vec![0.0f64; chunk.len()];
                let mut hi_acc = vec![0.0f64; chunk.len()];
                match pair {
                    FlatPair::Gbt { lo, hi } => {
                        lo.accumulate_block(&rows, d, &mut lo_acc);
                        hi.accumulate_block(&rows, d, &mut hi_acc);
                    }
                    FlatPair::Oblivious { lo, hi } => {
                        lo.accumulate_block(&rows, d, &mut lo_acc);
                        hi.accumulate_block(&rows, d, &mut hi_acc);
                    }
                }
                for (band, (l, h)) in chunk.iter_mut().zip(lo_acc.iter().zip(&hi_acc)) {
                    *band = (*l, *h);
                }
            });
        } else {
            vmin_trace::counter_add("serve.scalar.rows", n as u64);
            let mut row_buf = vec![0.0f64; d];
            for (i, band) in bands.iter_mut().enumerate() {
                self.gather_row(x, i, &mut row_buf);
                *band = match &self.pair {
                    FlatPair::Gbt { lo, hi } => {
                        (lo.predict_row(&row_buf), hi.predict_row(&row_buf))
                    }
                    FlatPair::Oblivious { lo, hi } => {
                        (lo.predict_row(&row_buf), hi.predict_row(&row_buf))
                    }
                };
            }
        }
        Ok(bands
            .into_iter()
            .map(|(lo, hi)| PredictionInterval::new(lo - self.qhat, hi + self.qhat))
            .collect())
    }
}

fn capture_scaler(s: &Standardizer) -> ScalerState {
    ScalerState {
        means: s.means().to_vec(),
        scales: s.scales().to_vec(),
    }
}
