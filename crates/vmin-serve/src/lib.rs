//! # vmin-serve
//!
//! The deployment half of the pipeline: production-test screening scores
//! every chip coming off the line against an already-fitted CQR pair, so
//! serving must be fast, portable and bit-for-bit faithful to the model
//! the calibration guarantee was proven on. This crate provides the three
//! pieces (ROADMAP item 1):
//!
//! - **Flattened inference tables** ([`FlatGbt`], [`FlatOblivious`]):
//!   a fitted `GradientBoost` becomes one contiguous struct-of-arrays
//!   node table per ensemble (feature / threshold / child indices, leaves
//!   carrying the pre-scaled `learning_rate · weight` contribution), and
//!   each `ObliviousBoost` tree becomes a `2^depth` leaf lookup table
//!   indexed by a per-row comparison bitmask. Both kernels replay exactly
//!   the floating-point operations of the live-struct `predict_row`
//!   walks, in the same order, so predictions are **bit-identical** to
//!   trait dispatch — the equivalence suite asserts it seed by seed.
//! - **`vmin-artifact/v1`** ([`ServeModel::to_bytes`] /
//!   [`ServeModel::from_bytes`]): a versioned, deterministic little-endian
//!   binary format (magic header, length-prefixed sections, FNV-1a
//!   content checksum) snapshotting the flattened pair together with the
//!   calibration quantile `q̂`, the miscoverage level `α` and optional
//!   standardizer state. Reloads are bit-identical and predict without
//!   touching any fit path.
//! - **Batch serving** ([`ServeModel::serve_batch`]): row blocks fanned
//!   out via `vmin-par`, bit-identical across `VMIN_THREADS`, with
//!   `serve.*` counters/spans and the `VMIN_SERVE` kill switch
//!   (off = per-row scalar walks in the live-struct shape; a pure path
//!   selection, outputs byte-identical either way).
//!
//! ## Example
//!
//! ```
//! use vmin_conformal::Cqr;
//! use vmin_linalg::Matrix;
//! use vmin_models::{GradientBoost, Loss};
//! use vmin_serve::ServeModel;
//!
//! let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.1]).collect();
//! let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
//! let x = Matrix::from_rows(&rows)?;
//! let mut cqr = Cqr::new(
//!     GradientBoost::new(Loss::Pinball(0.05)),
//!     GradientBoost::new(Loss::Pinball(0.95)),
//!     0.1,
//! );
//! cqr.fit_calibrate(&x, &y, &x, &y)?;
//!
//! let model = ServeModel::from_gbt_cqr(&cqr, None)?;
//! let bytes = model.to_bytes();
//! let reloaded = ServeModel::from_bytes(&bytes)?;
//! let served = reloaded.serve_batch(&x, 16)?;
//! let live = cqr.predict_interval(x.row(7))?;
//! assert_eq!(served[7].lo().to_bits(), live.lo().to_bits());
//! assert_eq!(served[7].hi().to_bits(), live.hi().to_bits());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

mod artifact;
mod engine;
mod flat;

pub use artifact::{ArtifactError, MAGIC};
pub use engine::{ServeError, ServeModel};
pub use flat::{FlatGbt, FlatOblivious};

// ---------------------------------------------------------------------------
// Global serve flag (mirrors the VMIN_HIST trio in vmin-models::hist)
// ---------------------------------------------------------------------------

static SERVE_FLAG: OnceLock<AtomicBool> = OnceLock::new();
static SERVE_LOCK: Mutex<()> = Mutex::new(());

fn serve_flag() -> &'static AtomicBool {
    SERVE_FLAG.get_or_init(|| AtomicBool::new(vmin_trace::env_flag("VMIN_SERVE", true)))
}

/// Whether the flattened batch kernels are active. Defaults to on; the
/// environment variable `VMIN_SERVE` (read once per process via
/// [`vmin_trace::env_flag`]; `0`/`false`/`off` disable) turns them off,
/// as does [`set_serve_enabled`]. Off means [`ServeModel::serve_batch`]
/// walks rows one at a time through the scalar reference path — a pure
/// path selection, outputs byte-identical either way.
pub fn serve_enabled() -> bool {
    serve_flag().load(Ordering::Relaxed)
}

/// Sets the serve flag, returning the previous value. Prefer
/// [`with_serve`] in tests and benches: it serializes flag changes so
/// concurrently running tests cannot observe each other's toggles.
pub fn set_serve_enabled(on: bool) -> bool {
    serve_flag().swap(on, Ordering::Relaxed)
}

struct FlagRestore(bool);

impl Drop for FlagRestore {
    fn drop(&mut self) {
        set_serve_enabled(self.0);
    }
}

/// Runs `f` with the batch kernels pinned to `on`, restoring the previous
/// flag afterwards (also on panic). Holds a global mutex for the duration
/// so parallel flag-sensitive tests serialize instead of racing; do not
/// nest calls — the lock is not reentrant.
pub fn with_serve<R>(on: bool, f: impl FnOnce() -> R) -> R {
    let _guard = SERVE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let _restore = FlagRestore(set_serve_enabled(on));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_serve_pins_and_restores() {
        let before = serve_enabled();
        let seen = with_serve(false, serve_enabled);
        assert!(!seen);
        let seen = with_serve(true, serve_enabled);
        assert!(seen);
        assert_eq!(serve_enabled(), before);
    }
}
