//! `vmin-artifact/v1`: the portable on-disk snapshot of a [`ServeModel`].
//!
//! Layout (everything little-endian, `f64` stored as the IEEE bit
//! pattern via `to_bits`, so round-trips are bit-exact):
//!
//! ```text
//! magic      b"vmin-artifact/v1\n"              (17 bytes)
//! family     u8   (1 = GBT pair, 2 = oblivious pair)
//! n_sections u8
//! sections   tag u8 · payload_len u64 · payload  (tags strictly increasing)
//!   1 CAL        alpha f64 · qhat f64
//!   2 SCALER     n u64 · means n×f64 · scales n×f64   (optional)
//!   3 LO MODEL   family-specific table encoding (below)
//!   4 HI MODEL   same
//! footer     u64  FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! GBT model payload: `n_features u64 · base_score f64 · n_trees u64 ·
//! roots (n_trees+1)×u32 · n_nodes u64 · feature n_nodes×u32 ·
//! threshold n_nodes×f64 · left n_nodes×u32 · right n_nodes×u32`.
//!
//! Oblivious model payload: `n_features u64 · base_score f64 ·
//! n_trees u64 · level_off (n_trees+1)×u32 · n_levels u64 ·
//! level_feat ×u32 · level_thr ×f64 · lut_off (n_trees+1)×u32 ·
//! n_lut u64 · lut ×f64`.
//!
//! Encoding is a pure function of the captured tables — same model, same
//! bytes — which is what makes the golden-artifact regression suite and
//! the save→load→save identity possible. Decoding trusts nothing: magic,
//! version, checksum, section framing and every structural invariant
//! (monotone offsets, in-range features, strictly-forward child indices,
//! `2^levels` LUT sizes) are re-checked, and every failure is a typed
//! [`ArtifactError`] — corrupt bytes never panic and never build a model
//! whose walks could fail to terminate.

use crate::engine::{FlatPair, ScalerState, ServeModel};
use crate::flat::{FlatGbt, FlatOblivious, LEAF, MAX_OBLIVIOUS_DEPTH};
use std::error::Error;
use std::fmt;

/// The `vmin-artifact/v1` magic header, newline-terminated so the version
/// line is greppable in the raw file.
pub const MAGIC: &[u8] = b"vmin-artifact/v1\n";

/// Shared prefix of every artifact version, used to distinguish "not an
/// artifact at all" from "an artifact of a version this build cannot read".
const MAGIC_PREFIX: &[u8] = b"vmin-artifact/";

const FAMILY_GBT: u8 = 1;
const FAMILY_OBLIVIOUS: u8 = 2;

const SEC_CAL: u8 = 1;
const SEC_SCALER: u8 = 2;
const SEC_LO: u8 = 3;
const SEC_HI: u8 = 4;

/// Typed decode failure. Every way arbitrary bytes can disappoint maps to
/// exactly one variant; none of them panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// Fewer bytes than the layout requires at this point.
    Truncated {
        /// Bytes the current read needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The file does not start with any `vmin-artifact/` header.
    BadMagic,
    /// A `vmin-artifact/` header of a version this build cannot read.
    UnsupportedVersion(String),
    /// Content checksum mismatch: the bytes were corrupted in flight.
    BadChecksum {
        /// Checksum recomputed over the received bytes.
        expected: u64,
        /// Checksum the footer claims.
        found: u64,
    },
    /// Framing or structural invariant violation inside a section.
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { needed, have } => {
                write!(f, "artifact truncated: needed {needed} bytes, have {have}")
            }
            ArtifactError::BadMagic => write!(f, "not a vmin-artifact file"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported artifact version {v:?} (this build reads v1)"
                )
            }
            ArtifactError::BadChecksum { expected, found } => write!(
                f,
                "artifact checksum mismatch: computed {expected:#018x}, stored {found:#018x}"
            ),
            ArtifactError::Malformed(m) => write!(f, "malformed artifact: {m}"),
        }
    }
}

impl Error for ArtifactError {}

/// FNV-1a 64 — tiny, dependency-free, deterministic; an integrity (not
/// security) checksum for catching bit rot and truncation.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

fn encode_gbt(m: &FlatGbt) -> Vec<u8> {
    let mut p = Vec::new();
    put_u64(&mut p, u64::from(m.n_features));
    put_f64(&mut p, m.base_score);
    put_u64(&mut p, m.n_trees() as u64);
    for &r in &m.roots {
        put_u32(&mut p, r);
    }
    put_u64(&mut p, m.feature.len() as u64);
    for &f in &m.feature {
        put_u32(&mut p, f);
    }
    for &t in &m.threshold {
        put_f64(&mut p, t);
    }
    for &l in &m.left {
        put_u32(&mut p, l);
    }
    for &r in &m.right {
        put_u32(&mut p, r);
    }
    p
}

fn encode_oblivious(m: &FlatOblivious) -> Vec<u8> {
    let mut p = Vec::new();
    put_u64(&mut p, u64::from(m.n_features));
    put_f64(&mut p, m.base_score);
    put_u64(&mut p, m.n_trees() as u64);
    for &o in &m.level_off {
        put_u32(&mut p, o);
    }
    put_u64(&mut p, m.level_feat.len() as u64);
    for &f in &m.level_feat {
        put_u32(&mut p, f);
    }
    for &t in &m.level_thr {
        put_f64(&mut p, t);
    }
    for &o in &m.lut_off {
        put_u32(&mut p, o);
    }
    put_u64(&mut p, m.lut.len() as u64);
    for &v in &m.lut {
        put_f64(&mut p, v);
    }
    p
}

impl ServeModel {
    /// Serializes the model as `vmin-artifact/v1` bytes — a pure function
    /// of the captured state, so equal models yield equal bytes and
    /// save→load→save is a byte-for-byte identity.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let (family, lo_payload, hi_payload) = match &self.pair {
            FlatPair::Gbt { lo, hi } => (FAMILY_GBT, encode_gbt(lo), encode_gbt(hi)),
            FlatPair::Oblivious { lo, hi } => {
                (FAMILY_OBLIVIOUS, encode_oblivious(lo), encode_oblivious(hi))
            }
        };
        out.push(family);
        let n_sections = if self.scaler.is_some() { 4u8 } else { 3u8 };
        out.push(n_sections);
        let mut cal = Vec::new();
        put_f64(&mut cal, self.alpha);
        put_f64(&mut cal, self.qhat);
        put_section(&mut out, SEC_CAL, &cal);
        if let Some(s) = &self.scaler {
            let mut sc = Vec::new();
            put_u64(&mut sc, s.means.len() as u64);
            for &m in &s.means {
                put_f64(&mut sc, m);
            }
            for &v in &s.scales {
                put_f64(&mut sc, v);
            }
            put_section(&mut out, SEC_SCALER, &sc);
        }
        put_section(&mut out, SEC_LO, &lo_payload);
        put_section(&mut out, SEC_HI, &hi_payload);
        let checksum = fnv1a64(&out);
        put_u64(&mut out, checksum);
        vmin_trace::counter_add("serve.artifact.saves", 1);
        vmin_trace::gauge_max("serve.artifact.bytes", out.len() as f64);
        out
    }

    /// Decodes and validates `vmin-artifact/v1` bytes into a servable
    /// model, without touching any training crate code path.
    ///
    /// # Errors
    ///
    /// Every [`ArtifactError`] variant, per its documentation; arbitrary
    /// input never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        if bytes.len() < MAGIC.len() {
            if bytes.starts_with(MAGIC_PREFIX) || MAGIC_PREFIX.starts_with(bytes) {
                return Err(ArtifactError::Truncated {
                    needed: MAGIC.len(),
                    have: bytes.len(),
                });
            }
            return Err(ArtifactError::BadMagic);
        }
        if !bytes.starts_with(MAGIC) {
            if bytes.starts_with(MAGIC_PREFIX) {
                let rest = &bytes[MAGIC_PREFIX.len()..];
                let end = rest
                    .iter()
                    .position(|&b| b == b'\n')
                    .unwrap_or(rest.len().min(16));
                let version = String::from_utf8_lossy(&rest[..end]).into_owned();
                return Err(ArtifactError::UnsupportedVersion(version));
            }
            return Err(ArtifactError::BadMagic);
        }
        let body_len = bytes.len().saturating_sub(8);
        if body_len < MAGIC.len() + 2 {
            return Err(ArtifactError::Truncated {
                needed: MAGIC.len() + 2 + 8,
                have: bytes.len(),
            });
        }
        let expected = fnv1a64(&bytes[..body_len]);
        let mut footer = [0u8; 8];
        footer.copy_from_slice(&bytes[body_len..]);
        let found = u64::from_le_bytes(footer);
        if expected != found {
            return Err(ArtifactError::BadChecksum { expected, found });
        }
        let mut cur = Cur {
            bytes: &bytes[..body_len],
            pos: MAGIC.len(),
        };
        let family = cur.u8()?;
        let n_sections = cur.u8()?;
        let mut cal: Option<(f64, f64)> = None;
        let mut scaler: Option<ScalerState> = None;
        let mut lo_bytes: Option<&[u8]> = None;
        let mut hi_bytes: Option<&[u8]> = None;
        let mut last_tag = 0u8;
        for _ in 0..n_sections {
            let tag = cur.u8()?;
            if tag <= last_tag {
                return Err(ArtifactError::Malformed(format!(
                    "section tags must be strictly increasing (saw {tag} after {last_tag})"
                )));
            }
            last_tag = tag;
            let len = cur.u64()? as usize;
            let payload = cur.take(len)?;
            match tag {
                SEC_CAL => {
                    let mut c = Cur {
                        bytes: payload,
                        pos: 0,
                    };
                    cal = Some((c.f64()?, c.f64()?));
                    c.finish("calibration section")?;
                }
                SEC_SCALER => {
                    let mut c = Cur {
                        bytes: payload,
                        pos: 0,
                    };
                    let n = c.len("scaler column count")?;
                    let means = c.f64_vec(n)?;
                    let scales = c.f64_vec(n)?;
                    c.finish("scaler section")?;
                    scaler = Some(ScalerState { means, scales });
                }
                SEC_LO => lo_bytes = Some(payload),
                SEC_HI => hi_bytes = Some(payload),
                other => {
                    return Err(ArtifactError::Malformed(format!(
                        "unknown section tag {other}"
                    )));
                }
            }
        }
        cur.finish("artifact body")?;
        let (alpha, qhat) =
            cal.ok_or_else(|| ArtifactError::Malformed("missing calibration section".into()))?;
        let lo_bytes =
            lo_bytes.ok_or_else(|| ArtifactError::Malformed("missing lo-model section".into()))?;
        let hi_bytes =
            hi_bytes.ok_or_else(|| ArtifactError::Malformed("missing hi-model section".into()))?;
        let pair = match family {
            FAMILY_GBT => FlatPair::Gbt {
                lo: Box::new(decode_gbt(lo_bytes, "lo")?),
                hi: Box::new(decode_gbt(hi_bytes, "hi")?),
            },
            FAMILY_OBLIVIOUS => FlatPair::Oblivious {
                lo: Box::new(decode_oblivious(lo_bytes, "lo")?),
                hi: Box::new(decode_oblivious(hi_bytes, "hi")?),
            },
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "unknown model family {other}"
                )));
            }
        };
        let model = ServeModel::from_parts(pair, alpha, qhat, scaler)
            .map_err(|e| ArtifactError::Malformed(e.to_string()))?;
        vmin_trace::counter_add("serve.artifact.loads", 1);
        vmin_trace::gauge_max("serve.artifact.bytes", bytes.len() as f64);
        Ok(model)
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor; every overrun is a typed
/// [`ArtifactError::Truncated`].
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let have = self.bytes.len() - self.pos;
        if n > have {
            return Err(ArtifactError::Truncated { needed: n, have });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, ArtifactError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` count that must also fit the remaining payload (8 bytes per
    /// element lower bound would over-reject u32 vecs, so just cap at the
    /// remaining byte count — the per-vector `take` does the exact check).
    fn len(&mut self, what: &str) -> Result<usize, ArtifactError> {
        let v = self.u64()?;
        if v > self.bytes.len() as u64 {
            return Err(ArtifactError::Malformed(format!(
                "{what} {v} exceeds the section size"
            )));
        }
        Ok(v as usize)
    }

    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, ArtifactError> {
        let raw = self.take(n.saturating_mul(4))?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, ArtifactError> {
        let raw = self.take(n.saturating_mul(8))?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(b))
            })
            .collect())
    }

    fn finish(&self, what: &str) -> Result<(), ArtifactError> {
        if self.pos != self.bytes.len() {
            return Err(ArtifactError::Malformed(format!(
                "{what} has {} trailing bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn decode_width(cur: &mut Cur<'_>, which: &str) -> Result<u32, ArtifactError> {
    let w = cur.u64()?;
    match u32::try_from(w) {
        Ok(w) if w > 0 => Ok(w),
        _ => Err(ArtifactError::Malformed(format!(
            "{which} model: feature count {w} out of range"
        ))),
    }
}

fn decode_gbt(payload: &[u8], which: &str) -> Result<FlatGbt, ArtifactError> {
    let mut c = Cur {
        bytes: payload,
        pos: 0,
    };
    let n_features = decode_width(&mut c, which)?;
    let base_score = c.f64()?;
    let n_trees = c.len("tree count")?;
    if n_trees == 0 {
        return Err(ArtifactError::Malformed(format!(
            "{which} model: zero trees"
        )));
    }
    let roots = c.u32_vec(n_trees + 1)?;
    let n_nodes = c.len("node count")?;
    let feature = c.u32_vec(n_nodes)?;
    let threshold = c.f64_vec(n_nodes)?;
    let left = c.u32_vec(n_nodes)?;
    let right = c.u32_vec(n_nodes)?;
    c.finish("GBT model section")?;
    if roots[0] != 0 || roots[n_trees] as usize != n_nodes {
        return Err(ArtifactError::Malformed(format!(
            "{which} model: root offsets do not span the node table"
        )));
    }
    for t in 0..n_trees {
        let (start, end) = (roots[t] as usize, roots[t + 1] as usize);
        if end <= start || end > n_nodes {
            return Err(ArtifactError::Malformed(format!(
                "{which} model: tree {t} offsets ({start}, {end}) are not increasing"
            )));
        }
        let mut referenced = vec![false; end - start];
        for i in start..end {
            if feature[i] == LEAF {
                // Leaves must self-loop: the fixed-depth lockstep walk
                // parks rows that reach a leaf early on the leaf itself.
                if left[i] as usize != i || right[i] as usize != i {
                    return Err(ArtifactError::Malformed(format!(
                        "{which} model: leaf {i} children ({}, {}) are not self-loops",
                        left[i], right[i]
                    )));
                }
                continue;
            }
            if feature[i] >= n_features {
                return Err(ArtifactError::Malformed(format!(
                    "{which} model: node {i} tests feature {} of {n_features}",
                    feature[i]
                )));
            }
            let (l, r) = (left[i] as usize, right[i] as usize);
            // Strictly-forward children guarantee the walk terminates.
            if l <= i || r <= i || l >= end || r >= end {
                return Err(ArtifactError::Malformed(format!(
                    "{which} model: node {i} children ({l}, {r}) escape ({i}, {end})"
                )));
            }
            // Each node hangs off at most one split: the decoder's
            // breadth-first renumbering walks a *tree*, and rejecting
            // shared children here keeps that walk linear even on
            // hostile bytes (a DAG would blow up exponentially).
            if l == r || referenced[l - start] || referenced[r - start] {
                return Err(ArtifactError::Malformed(format!(
                    "{which} model: node {i} children ({l}, {r}) reuse a node"
                )));
            }
            referenced[l - start] = true;
            referenced[r - start] = true;
        }
    }
    let tables = crate::flat::derive_gbt_tables(&roots, &feature, &threshold, &left, &right);
    Ok(FlatGbt {
        n_features,
        base_score,
        roots,
        feature,
        threshold,
        left,
        right,
        packed: tables.packed,
        value: tables.value,
        packed_roots: tables.roots,
        depth: tables.depth,
        thr_pad: tables.thr_pad,
        meta_pad: tables.meta_pad,
        value_pad: tables.value_pad,
    })
}

fn decode_oblivious(payload: &[u8], which: &str) -> Result<FlatOblivious, ArtifactError> {
    let mut c = Cur {
        bytes: payload,
        pos: 0,
    };
    let n_features = decode_width(&mut c, which)?;
    let base_score = c.f64()?;
    let n_trees = c.len("tree count")?;
    if n_trees == 0 {
        return Err(ArtifactError::Malformed(format!(
            "{which} model: zero trees"
        )));
    }
    let level_off = c.u32_vec(n_trees + 1)?;
    let n_levels = c.len("level count")?;
    let level_feat = c.u32_vec(n_levels)?;
    let level_thr = c.f64_vec(n_levels)?;
    let lut_off = c.u32_vec(n_trees + 1)?;
    let n_lut = c.len("LUT length")?;
    let lut = c.f64_vec(n_lut)?;
    c.finish("oblivious model section")?;
    if level_off[0] != 0 || level_off[n_trees] as usize != n_levels {
        return Err(ArtifactError::Malformed(format!(
            "{which} model: level offsets do not span the level table"
        )));
    }
    if lut_off[0] != 0 || lut_off[n_trees] as usize != n_lut {
        return Err(ArtifactError::Malformed(format!(
            "{which} model: LUT offsets do not span the LUT"
        )));
    }
    for t in 0..n_trees {
        let (ls, le) = (level_off[t] as usize, level_off[t + 1] as usize);
        if le < ls || le > n_levels {
            return Err(ArtifactError::Malformed(format!(
                "{which} model: tree {t} level offsets ({ls}, {le}) are not monotone"
            )));
        }
        let depth = le - ls;
        if depth > MAX_OBLIVIOUS_DEPTH {
            return Err(ArtifactError::Malformed(format!(
                "{which} model: tree {t} has {depth} levels (max {MAX_OBLIVIOUS_DEPTH})"
            )));
        }
        let (us, ue) = (lut_off[t] as usize, lut_off[t + 1] as usize);
        if ue < us || ue > n_lut || ue - us != 1usize << depth {
            return Err(ArtifactError::Malformed(format!(
                "{which} model: tree {t} LUT has {} slots for {depth} levels",
                ue.saturating_sub(us)
            )));
        }
        for (k, &f) in level_feat.iter().enumerate().take(le).skip(ls) {
            if f >= n_features {
                return Err(ArtifactError::Malformed(format!(
                    "{which} model: level {k} tests feature {f} of {n_features}"
                )));
            }
        }
    }
    Ok(FlatOblivious {
        n_features,
        base_score,
        level_feat,
        level_thr,
        level_off,
        lut,
        lut_off,
    })
}
