//! Free functions on `&[f64]` slices.
//!
//! The workspace treats vectors as plain slices; these helpers implement the
//! handful of BLAS-1 style kernels and reductions the models need.

/// Dot product of two equally-long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(vmin_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise difference `a - b` as a fresh vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Unbiased sample variance (`n - 1` denominator); `0.0` when `n < 2`.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Minimum value; `f64::INFINITY` for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value; `f64::NEG_INFINITY` for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the smallest element, or `None` for an empty slice.
/// Ties resolve to the earliest index; NaN entries are skipped.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the largest element, or `None` for an empty slice.
/// Ties resolve to the earliest index; NaN entries are skipped.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_norm() {
        let a = [1.0, 2.0, 2.0];
        assert_eq!(norm2(&a), 3.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn mean_variance_known() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&a), 5.0);
        // Sum of squared deviations = 32, n-1 = 7.
        assert!((variance(&a) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&a) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(argmin(&[]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argminmax_ties_and_nan() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmax(&[3.0, 3.0, 1.0]), Some(0));
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }
}
