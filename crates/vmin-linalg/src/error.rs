//! Error types for linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Error produced by linear-algebra routines in this crate.
///
/// Every fallible public function in [`crate`] returns this type so that
/// callers can handle numerical failure (e.g. a matrix that is not positive
/// definite) without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries a human-readable description of the mismatch, e.g.
    /// `"matmul: lhs is 3x4 but rhs is 5x2"`.
    ShapeMismatch(String),
    /// A factorization failed because the matrix is singular or not positive
    /// definite (within numerical tolerance).
    NotPositiveDefinite {
        /// Index of the pivot where the factorization broke down.
        pivot: usize,
    },
    /// A solve was attempted against a (numerically) singular system.
    Singular {
        /// Index of the offending pivot/diagonal entry.
        pivot: usize,
    },
    /// An argument was outside its legal domain (e.g. an empty matrix where a
    /// non-empty one is required, or a probability outside `[0, 1]`).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is numerically singular (pivot {pivot})")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::ShapeMismatch("lhs 2x2 rhs 3x3".into());
        assert_eq!(e.to_string(), "shape mismatch: lhs 2x2 rhs 3x3");
        let e = LinalgError::NotPositiveDefinite { pivot: 4 };
        assert!(e.to_string().contains("pivot 4"));
        let e = LinalgError::Singular { pivot: 0 };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::InvalidArgument("alpha out of range".into());
        assert!(e.to_string().contains("alpha"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
