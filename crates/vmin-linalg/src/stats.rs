//! Order statistics, quantiles and distribution helpers.

use crate::error::{LinalgError, Result};

/// Empirical quantile at probability `p` using linear interpolation between
/// order statistics (the "type 7" definition used by NumPy's default).
///
/// # Errors
///
/// - [`LinalgError::InvalidArgument`] if `data` is empty or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// let q = vmin_linalg::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5)?;
/// assert_eq!(q, 2.5);
/// # Ok::<(), vmin_linalg::LinalgError>(())
/// ```
pub fn quantile(data: &[f64], p: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "quantile of empty slice".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(LinalgError::InvalidArgument(format!(
            "quantile probability must be in [0, 1], got {p}"
        )));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Ok(quantile_sorted(&sorted, p))
}

/// [`quantile`] on data that is already ascending-sorted. No validation.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Higher (conservative) empirical quantile: the smallest order statistic
/// `x_(k)` with `k/n >= p`. This is the "type 1"-style quantile conformal
/// prediction requires: it never interpolates below the target level.
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn quantile_higher(data: &[f64], p: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(LinalgError::InvalidArgument(
            "quantile_higher of empty slice".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(LinalgError::InvalidArgument(format!(
            "quantile probability must be in [0, 1], got {p}"
        )));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let k = (p * n as f64).ceil() as usize;
    let idx = k.max(1).min(n) - 1;
    Ok(sorted[idx])
}

/// Pearson product-moment correlation coefficient between two slices.
///
/// Returns `0.0` when either slice has zero variance (a convention that keeps
/// constant features harmless for feature selection).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = crate::vector::mean(a);
    let mb = crate::vector::mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Inverse CDF (probit) of the standard normal distribution.
///
/// Uses the Acklam rational approximation, accurate to ~1.15e-9 absolute
/// error — more than enough for constructing Gaussian prediction intervals.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidArgument`] when `p ∉ (0, 1)`.
///
/// # Examples
///
/// ```
/// let z = vmin_linalg::normal_inverse_cdf(0.975)?;
/// assert!((z - 1.959964).abs() < 1e-5);
/// # Ok::<(), vmin_linalg::LinalgError>(())
/// ```
pub fn normal_inverse_cdf(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(LinalgError::InvalidArgument(format!(
            "normal_inverse_cdf requires p in (0, 1), got {p}"
        )));
    }
    // Coefficients for the Acklam approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    Ok(x)
}

/// Standard normal CDF via `erf`-free Abramowitz–Stegun-style approximation
/// built on the complementary relationship with [`normal_inverse_cdf`]'s
/// accuracy class (absolute error < 7.5e-8).
pub fn normal_cdf(x: f64) -> f64 {
    // Zelen & Severo approximation 26.2.17.
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints_and_median() {
        let d = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&d, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&d, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&d, 0.5).unwrap(), 2.5);
    }

    #[test]
    fn quantile_singleton() {
        assert_eq!(quantile(&[7.0], 0.3).unwrap(), 7.0);
    }

    #[test]
    fn quantile_validates() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn quantile_higher_is_conservative() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        // p=0.5 over 5 points → ceil(2.5)=3rd order statistic = 3.0
        assert_eq!(quantile_higher(&d, 0.5).unwrap(), 3.0);
        // p=0.9 → ceil(4.5)=5th = 5.0
        assert_eq!(quantile_higher(&d, 0.9).unwrap(), 5.0);
        // p=0 clamps to first order statistic
        assert_eq!(quantile_higher(&d, 0.0).unwrap(), 1.0);
        // The defining guarantee: the empirical CDF at the returned value
        // reaches at least p.
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let q = quantile_higher(&d, p).unwrap();
            let cdf = d.iter().filter(|&&x| x <= q).count() as f64 / d.len() as f64;
            assert!(cdf >= p, "p={p}: cdf at q={q} is {cdf}");
        }
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn probit_known_values() {
        assert!((normal_inverse_cdf(0.5).unwrap()).abs() < 1e-9);
        assert!((normal_inverse_cdf(0.975).unwrap() - 1.9599639845).abs() < 1e-6);
        assert!((normal_inverse_cdf(0.025).unwrap() + 1.9599639845).abs() < 1e-6);
        assert!((normal_inverse_cdf(0.95).unwrap() - 1.6448536270).abs() < 1e-6);
        assert!(normal_inverse_cdf(0.0).is_err());
        assert!(normal_inverse_cdf(1.0).is_err());
    }

    #[test]
    fn probit_and_cdf_are_inverse() {
        for p in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let z = normal_inverse_cdf(p).unwrap();
            assert!((normal_cdf(z) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn cdf_symmetry() {
        for x in [0.0, 0.5, 1.0, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }
}
