//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by ridge regression (normal equations) and exact Gaussian-process
//! inference (kernel matrix solves and log-determinants).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use vmin_linalg::{Cholesky, Matrix};
///
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok::<(), vmin_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::InvalidArgument`] if `a` is not square or is empty.
    /// - [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive
    ///   within tolerance.
    pub fn factor(a: &Matrix) -> Result<Self> {
        if !a.is_square() || a.rows() == 0 {
            return Err(LinalgError::InvalidArgument(
                "cholesky requires a non-empty square matrix".into(),
            ));
        }
        let _span = vmin_trace::span("linalg.cholesky.factor");
        vmin_trace::counter_add("linalg.cholesky.factorizations", 1);
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension `n` of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow of the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization (forward then back
    /// substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve: factor is {n}x{n} but rhs has length {}",
                b.len()
            )));
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Back: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_matrix: factor is {0}x{0} but rhs has {1} rows",
                self.dim(),
                b.rows()
            )));
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        let mut col = Vec::with_capacity(b.rows());
        for j in 0..b.cols() {
            b.copy_col_into(j, &mut col);
            let x = self.solve(&col)?;
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Solves the triangular system `L y = b` only (forward substitution).
    ///
    /// Useful for GP predictive variance: `vᵀv` where `L v = k*`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    pub fn forward_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "forward_solve: factor is {n}x{n} but rhs has length {}",
                b.len()
            )));
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B, guaranteed SPD.
        Matrix::from_rows(&[
            vec![6.0, 3.0, 2.0],
            vec![3.0, 7.0, 1.0],
            vec![2.0, 1.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        assert!((&back - &a).max_abs() < 1e-12);
    }

    #[test]
    fn solve_matches_residual() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = c.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for i in 0..3 {
            assert!((ax[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let inv = c.solve_matrix(&Matrix::identity(3)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &Matrix::identity(3)).max_abs() < 1e-12);
    }

    #[test]
    fn forward_solve_is_triangular_solve() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let y = c.forward_solve(&b).unwrap();
        let ly = c.l().matvec(&y).unwrap();
        for i in 0..3 {
            assert!((ly[i] - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_matches_known() {
        // det of diag(4, 9) = 36.
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
        let e = Matrix::zeros(0, 0);
        assert!(Cholesky::factor(&e).is_err());
    }

    #[test]
    fn solve_shape_errors() {
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.solve(&[1.0]).is_err());
        assert!(c.forward_solve(&[1.0]).is_err());
        assert!(c.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }
}
