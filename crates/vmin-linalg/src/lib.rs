//! # vmin-linalg
//!
//! Dense linear-algebra substrate for the `cqr-vmin` workspace.
//!
//! The Vmin interval-prediction models (crate `vmin-models`) need only a small
//! set of numerically careful kernels on a few hundred rows, so this crate
//! hand-rolls them instead of pulling a heavyweight dependency:
//!
//! - [`Matrix`]: dense row-major `f64` matrix with products, Gram matrices,
//!   row/column selection and concatenation.
//! - [`Cholesky`]: SPD factorization used for ridge regression and exact
//!   Gaussian-process inference (solves + log-determinants).
//! - [`Qr`] / [`lstsq`] / [`ridge`]: Householder least squares, robust to the
//!   near-collinear parametric-test features of the paper's dataset.
//! - [`quantile`] / [`quantile_higher`] / [`pearson`] /
//!   [`normal_inverse_cdf`]: the order statistics and distribution helpers
//!   conformal prediction and GP intervals are built on.
//!
//! ## Example
//!
//! ```
//! use vmin_linalg::{lstsq, Matrix};
//!
//! // Fit y = 3x − 1 from noise-free observations.
//! let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]])?;
//! let beta = lstsq(&x, &[-1.0, 2.0, 5.0])?;
//! assert!((beta[1] - 3.0).abs() < 1e-10);
//! # Ok::<(), vmin_linalg::LinalgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops are kept where they mirror the underlying matrix math.
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod error;
mod matrix;
mod qr;
mod stats;
mod vector;

pub use cholesky::Cholesky;
pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use qr::{lstsq, ridge, Qr};
pub use stats::{
    normal_cdf, normal_inverse_cdf, pearson, quantile, quantile_higher, quantile_sorted,
};
pub use vector::{argmax, argmin, axpy, dot, max, mean, min, norm2, std_dev, sub, variance};
