//! A small dense, row-major, `f64` matrix.
//!
//! This is intentionally minimal: the workspace only needs the handful of
//! operations required by ordinary least squares, ridge regression and exact
//! Gaussian-process inference on datasets of a few hundred rows.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use vmin_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok::<(), vmin_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if rows have differing lengths
    /// and [`LinalgError::InvalidArgument`] if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "from_rows requires at least one row".into(),
            ));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch(format!(
                    "row 0 has {cols} columns but row {i} has {}",
                    r.len()
                )));
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul: lhs is {}x{} but rhs is {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = i * rhs.cols;
                let rhs_row = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[lhs_row + j] += a * rhs.data[rhs_row + j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec: matrix has {} columns but vector has length {}",
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += row[j] * v[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always square `cols x cols`), computed
    /// symmetrically.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    g.data[a * self.cols + b] += ra * row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..self.cols {
            for b in (a + 1)..self.cols {
                g.data[b * self.cols + a] = g.data[a * self.cols + b];
            }
        }
        g
    }

    /// Adds `lambda` to every diagonal entry in place (Tikhonov / jitter).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += lambda;
        }
    }

    /// Returns a new matrix with only the selected columns, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any index is out of range.
    pub fn select_columns(&self, idx: &[usize]) -> Result<Matrix> {
        for &j in idx {
            if j >= self.cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "column index {j} out of range for matrix with {} columns",
                    self.cols
                )));
            }
        }
        let mut out = Matrix::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            for (jj, &j) in idx.iter().enumerate() {
                out[(i, jj)] = self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Returns a new matrix with only the selected rows, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any index is out of range.
    pub fn select_rows(&self, idx: &[usize]) -> Result<Matrix> {
        for &i in idx {
            if i >= self.rows {
                return Err(LinalgError::InvalidArgument(format!(
                    "row index {i} out of range for matrix with {} rows",
                    self.rows
                )));
            }
        }
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (ii, &i) in idx.iter().enumerate() {
            out.row_mut(ii).copy_from_slice(self.row(i));
        }
        Ok(out)
    }

    /// Horizontally concatenates `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hconcat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "hconcat: {} rows vs {} rows",
                self.rows, rhs.rows
            )));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row: Vec<String> = self.row(i).iter().map(|x| format!("{x:10.4}")).collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_and_indexing() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert!(!m.is_square());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch(_)));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::InvalidArgument(_))
        ));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_error() {
        let a = sample();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matvec_known_values() {
        let m = sample();
        let v = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(v, vec![-2.0, -2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let m = sample();
        let g = m.gram();
        let expected = m.transpose().matmul(&m).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_diagonal_jitters() {
        let mut g = sample().gram();
        let before = g[(1, 1)];
        g.add_diagonal(0.5);
        assert_eq!(g[(1, 1)], before + 0.5);
        assert_eq!(g[(0, 1)], sample().gram()[(0, 1)]);
    }

    #[test]
    fn select_columns_and_rows() {
        let m = sample();
        let c = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(c.row(0), &[3.0, 1.0]);
        let r = m.select_rows(&[1]).unwrap();
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert!(m.select_columns(&[9]).is_err());
        assert!(m.select_rows(&[9]).is_err());
    }

    #[test]
    fn hconcat_widths_add() {
        let m = sample();
        let h = m.hconcat(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let tall = Matrix::zeros(3, 1);
        assert!(m.hconcat(&tall).is_err());
    }

    #[test]
    fn arithmetic_operators() {
        let m = sample();
        let z = &m - &m;
        assert_eq!(z.frobenius_norm(), 0.0);
        let d = &(&m + &m) - &(&m * 2.0);
        assert!(d.max_abs() < 1e-15);
    }

    #[test]
    fn display_nonempty() {
        let s = format!("{}", sample());
        assert!(s.contains("1.0000"));
    }
}
