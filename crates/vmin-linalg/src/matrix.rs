//! A small dense, row-major, `f64` matrix.
//!
//! This is intentionally minimal: the workspace only needs the handful of
//! operations required by ordinary least squares, ridge regression and exact
//! Gaussian-process inference on datasets of a few hundred rows.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Cache-tile edge (in elements) for the blocked matmul/gram kernels.
///
/// A 64×64 `f64` tile is 32 KiB — it fits L1 on every mainstream core.
/// The tile size never affects results: every kernel accumulates each
/// output element in a fixed index order regardless of blocking.
const TILE: usize = 64;

/// Output rows per parallel work unit in the blocked kernels. Each unit is
/// handed to [`vmin_par::par_chunks_mut`] as one disjoint `&mut` region.
const ROW_BLOCK: usize = 16;

/// Minimum number of row blocks before worker threads are spawned; below
/// this the kernels run serially on the calling thread.
///
/// Raised from 2 after the PR 5 thread sweep (`BENCH_PR5.json`) showed the
/// 2-thread rows of the small workloads (`matmul_threads2`,
/// `table3_region_cell_threads2`) running *slower* than their 1-thread
/// rows: at 2 blocks the spawn/join handoff costs more than the ~160-row
/// matmuls it splits. 16 blocks (256 output rows) is the first size where
/// splitting reliably pays for itself; the `par_speedup` bench enforces
/// the threads2/threads1 ratio as a regression gate.
const MIN_PAR_BLOCKS: usize = 16;

/// Dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use vmin_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok::<(), vmin_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if rows have differing lengths
    /// and [`LinalgError::InvalidArgument`] if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "from_rows requires at least one row".into(),
            ));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch(format!(
                    "row 0 has {cols} columns but row {i} has {}",
                    r.len()
                )));
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a fresh vector.
    ///
    /// Hot paths should prefer [`Matrix::col_iter`] (no allocation) or
    /// [`Matrix::copy_col_into`] (caller-owned buffer, reusable across
    /// calls) — this convenience accessor allocates on every call.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        self.col_iter(j).collect()
    }

    /// Iterates over column `j` top to bottom without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        self.data.iter().skip(j).step_by(self.cols).copied()
    }

    /// Copies column `j` into `buf`, clearing it first. Reusing one buffer
    /// across calls avoids the per-call allocation of [`Matrix::col`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn copy_col_into(&self, j: usize, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend(self.col_iter(j));
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`, computed with a cache-tiled ikj kernel
    /// parallelized over blocks of output rows.
    ///
    /// Each output element accumulates its `k` terms in ascending order
    /// regardless of tiling or thread count, so results are bit-identical
    /// to serial execution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul: lhs is {}x{} but rhs is {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        if self.rows == 0 || n == 0 || self.cols == 0 {
            return Ok(out);
        }
        let _span = vmin_trace::span("linalg.matmul");
        vmin_trace::counter_add("linalg.matmul.calls", 1);
        vmin_trace::counter_add(
            "linalg.matmul.fma",
            (self.rows as u64) * (self.cols as u64) * (n as u64),
        );
        vmin_par::par_chunks_mut(&mut out.data, ROW_BLOCK * n, MIN_PAR_BLOCKS, |bi, block| {
            let i0 = bi * ROW_BLOCK;
            for (di, out_row) in block.chunks_mut(n).enumerate() {
                let lhs_row = self.row(i0 + di);
                for k0 in (0..self.cols).step_by(TILE) {
                    let k1 = (k0 + TILE).min(self.cols);
                    for j0 in (0..n).step_by(TILE) {
                        let j1 = (j0 + TILE).min(n);
                        for (k, &a) in lhs_row[k0..k1].iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let r0 = (k0 + k) * n;
                            let rhs_seg = &rhs.data[r0 + j0..r0 + j1];
                            for (o, &r) in out_row[j0..j1].iter_mut().zip(rhs_seg) {
                                *o += a * r;
                            }
                        }
                    }
                }
            }
        });
        Ok(out)
    }

    /// Matrix-vector product `self * v`, row-parallel.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec: matrix has {} columns but vector has length {}",
                self.cols,
                v.len()
            )));
        }
        vmin_trace::counter_add("linalg.matvec.calls", 1);
        let mut out = vec![0.0; self.rows];
        // One parallel unit per MATVEC_BLOCK output elements: matvec rows
        // are cheap, so the unit is coarser than the matmul row block.
        const MATVEC_BLOCK: usize = 128;
        vmin_par::par_chunks_mut(&mut out, MATVEC_BLOCK, MIN_PAR_BLOCKS, |bi, chunk| {
            let i0 = bi * MATVEC_BLOCK;
            for (di, o) in chunk.iter_mut().enumerate() {
                let row = self.row(i0 + di);
                let mut acc = 0.0;
                for (a, b) in row.iter().zip(v) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        Ok(out)
    }

    /// Transposed matrix-vector product `selfᵀ * v`, streamed in row-major
    /// order — no transpose is materialized.
    ///
    /// Bit-identical to `self.transpose().matvec(v)`: each output element
    /// accumulates its row terms in ascending row order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.rows()`.
    pub fn matvec_t(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec_t: matrix has {} rows but vector has length {}",
                self.rows,
                v.len()
            )));
        }
        vmin_trace::counter_add("linalg.matvec_t.calls", 1);
        let mut out = vec![0.0; self.cols];
        let c = self.cols;
        // Parallel over column segments: every worker streams all rows but
        // owns a disjoint slice of the output.
        vmin_par::par_chunks_mut(&mut out, TILE, MIN_PAR_BLOCKS, |bi, chunk| {
            let j0 = bi * TILE;
            for (i, &vi) in v.iter().enumerate() {
                let seg = &self.data[i * c + j0..i * c + j0 + chunk.len()];
                for (o, &a) in chunk.iter_mut().zip(seg) {
                    *o += vi * a;
                }
            }
        });
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always square `cols x cols`), computed
    /// symmetrically with the upper triangle parallelized over blocks of
    /// output rows.
    ///
    /// Each output element accumulates its data-row terms in ascending row
    /// order regardless of blocking, so results are bit-identical to serial
    /// execution.
    pub fn gram(&self) -> Matrix {
        let c = self.cols;
        let mut g = Matrix::zeros(c, c);
        if c == 0 || self.rows == 0 {
            return g;
        }
        let _span = vmin_trace::span("linalg.gram");
        vmin_trace::counter_add("linalg.gram.calls", 1);
        vmin_par::par_chunks_mut(&mut g.data, ROW_BLOCK * c, MIN_PAR_BLOCKS, |bi, block| {
            let a0 = bi * ROW_BLOCK;
            for i in 0..self.rows {
                let row = self.row(i);
                for (da, grow) in block.chunks_mut(c).enumerate() {
                    let a = a0 + da;
                    let ra = row[a];
                    if ra == 0.0 {
                        continue;
                    }
                    for (gv, &rb) in grow[a..].iter_mut().zip(&row[a..]) {
                        *gv += ra * rb;
                    }
                }
            }
        });
        // Mirror the upper triangle.
        for a in 0..c {
            for b in (a + 1)..c {
                g.data[b * c + a] = g.data[a * c + b];
            }
        }
        g
    }

    /// Adds `lambda` to every diagonal entry in place (Tikhonov / jitter).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += lambda;
        }
    }

    /// Returns a new matrix with only the selected columns, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any index is out of range.
    pub fn select_columns(&self, idx: &[usize]) -> Result<Matrix> {
        for &j in idx {
            if j >= self.cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "column index {j} out of range for matrix with {} columns",
                    self.cols
                )));
            }
        }
        let mut out = Matrix::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            for (jj, &j) in idx.iter().enumerate() {
                out[(i, jj)] = self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Returns a new matrix with only the selected rows, in order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if any index is out of range.
    pub fn select_rows(&self, idx: &[usize]) -> Result<Matrix> {
        for &i in idx {
            if i >= self.rows {
                return Err(LinalgError::InvalidArgument(format!(
                    "row index {i} out of range for matrix with {} rows",
                    self.rows
                )));
            }
        }
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (ii, &i) in idx.iter().enumerate() {
            out.row_mut(ii).copy_from_slice(self.row(i));
        }
        Ok(out)
    }

    /// Horizontally concatenates `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hconcat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "hconcat: {} rows vs {} rows",
                self.rows, rhs.rows
            )));
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row: Vec<String> = self.row(i).iter().map(|x| format!("{x:10.4}")).collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_and_indexing() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert!(!m.is_square());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch(_)));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            Matrix::from_rows(&[]),
            Err(LinalgError::InvalidArgument(_))
        ));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_error() {
        let a = sample();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matvec_known_values() {
        let m = sample();
        let v = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(v, vec![-2.0, -2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let m = sample();
        let g = m.gram();
        let expected = m.transpose().matmul(&m).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - expected[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_diagonal_jitters() {
        let mut g = sample().gram();
        let before = g[(1, 1)];
        g.add_diagonal(0.5);
        assert_eq!(g[(1, 1)], before + 0.5);
        assert_eq!(g[(0, 1)], sample().gram()[(0, 1)]);
    }

    #[test]
    fn select_columns_and_rows() {
        let m = sample();
        let c = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(c.row(0), &[3.0, 1.0]);
        let r = m.select_rows(&[1]).unwrap();
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert!(m.select_columns(&[9]).is_err());
        assert!(m.select_rows(&[9]).is_err());
    }

    #[test]
    fn hconcat_widths_add() {
        let m = sample();
        let h = m.hconcat(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let tall = Matrix::zeros(3, 1);
        assert!(m.hconcat(&tall).is_err());
    }

    #[test]
    fn arithmetic_operators() {
        let m = sample();
        let z = &m - &m;
        assert_eq!(z.frobenius_norm(), 0.0);
        let d = &(&m + &m) - &(&m * 2.0);
        assert!(d.max_abs() < 1e-15);
    }

    #[test]
    fn display_nonempty() {
        let s = format!("{}", sample());
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn col_iter_and_copy_col_into_match_col() {
        let m = sample();
        let mut buf = vec![99.0; 7];
        for j in 0..m.cols() {
            assert_eq!(m.col_iter(j).collect::<Vec<_>>(), m.col(j));
            m.copy_col_into(j, &mut buf);
            assert_eq!(buf, m.col(j));
        }
    }

    /// Deterministic pseudo-random matrix (plain LCG; no external deps).
    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    /// Naive serial ikj reference, identical term order to the tiled kernel.
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let v = a[(i, k)];
                if v == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    out[(i, j)] += v * b[(k, j)];
                }
            }
        }
        out
    }

    #[test]
    fn tiled_matmul_is_bit_identical_to_serial_reference() {
        // Sizes straddling the tile edge and the parallel threshold.
        for &(m, k, n) in &[(3, 5, 4), (17, 65, 9), (70, 33, 70), (130, 64, 5)] {
            let a = pseudo_random(m, k, 1 + m as u64);
            let b = pseudo_random(k, n, 2 + n as u64);
            let expect = matmul_reference(&a, &b);
            for threads in [1, 2, 8] {
                let got = vmin_par::with_threads(threads, || a.matmul(&b).unwrap());
                assert_eq!(got, expect, "{m}x{k}x{n} threads {threads}");
            }
        }
    }

    #[test]
    fn matvec_is_bit_identical_across_thread_counts() {
        let a = pseudo_random(300, 40, 7);
        let v: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let serial = vmin_par::with_threads(1, || a.matvec(&v).unwrap());
        for threads in [2, 8] {
            let got = vmin_par::with_threads(threads, || a.matvec(&v).unwrap());
            assert_eq!(got, serial, "threads {threads}");
        }
    }

    #[test]
    fn matvec_t_matches_materialized_transpose_bit_exactly() {
        let a = pseudo_random(90, 140, 11);
        let v: Vec<f64> = (0..90).map(|i| (i as f64 * 0.37).cos()).collect();
        let expect = a.transpose().matvec(&v).unwrap();
        for threads in [1, 2, 8] {
            let got = vmin_par::with_threads(threads, || a.matvec_t(&v).unwrap());
            assert_eq!(got, expect, "threads {threads}");
        }
        assert!(a.matvec_t(&v[..10]).is_err());
    }

    #[test]
    fn gram_is_bit_identical_to_explicit_transpose_product() {
        // transpose().matmul(&m) accumulates the same terms in the same
        // order with the same zero-skip, so equality is exact.
        for &(rows, cols) in &[(5, 3), (60, 40), (200, 20)] {
            let m = pseudo_random(rows, cols, rows as u64 * 31 + cols as u64);
            let expect = m.transpose().matmul(&m).unwrap();
            for threads in [1, 2, 8] {
                let got = vmin_par::with_threads(threads, || m.gram());
                assert_eq!(got, expect, "{rows}x{cols} threads {threads}");
            }
        }
    }
}
