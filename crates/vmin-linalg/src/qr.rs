//! Householder QR factorization and least-squares solving.
//!
//! Ordinary least squares on tall matrices is solved through QR rather than
//! the normal equations for numerical robustness with nearly-collinear
//! parametric-test features.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// Stores the Householder vectors (packed in the lower trapezoid) and the
/// upper-triangular factor `R`, which is enough to apply `Qᵀ` to right-hand
/// sides and solve least-squares problems.
///
/// # Examples
///
/// ```
/// use vmin_linalg::{Matrix, Qr};
///
/// // Overdetermined system: best fit of y = 2x + 1 through 3 points.
/// let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]])?;
/// let qr = Qr::factor(&a)?;
/// let beta = qr.solve_least_squares(&[1.0, 3.0, 5.0])?;
/// assert!((beta[0] - 1.0).abs() < 1e-10);
/// assert!((beta[1] - 2.0).abs() < 1e-10);
/// # Ok::<(), vmin_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factorization: Householder vectors below the diagonal,
    /// `R` on and above it.
    packed: Matrix,
    /// Scalar `tau_k` for each reflector.
    tau: Vec<f64>,
}

impl Qr {
    /// Factors `a` (shape `m x n`, `m >= n`) as `Q R`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `m < n` or `a` is empty.
    pub fn factor(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::InvalidArgument("qr of empty matrix".into()));
        }
        if m < n {
            return Err(LinalgError::InvalidArgument(format!(
                "qr requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut r = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = r[(k, k)] - alpha;
            // Normalize so that v[k] = 1 implicitly; store v[i]/v0 below diag.
            let mut vnorm2 = 1.0;
            for i in (k + 1)..m {
                let v = r[(i, k)] / v0;
                r[(i, k)] = v;
                vnorm2 += v * v;
            }
            tau[k] = 2.0 / vnorm2;
            r[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = r[(k, j)];
                for i in (k + 1)..m {
                    s += r[(i, k)] * r[(i, j)];
                }
                s *= tau[k];
                r[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = r[(i, k)];
                    r[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { packed: r, tau })
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = self.packed.shape();
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.packed[(i, k)] * y[i];
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.packed[(i, k)];
            }
        }
        y
    }

    /// Solves the least-squares problem `min ||a x - b||₂`.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::ShapeMismatch`] when `b.len() != m`.
    /// - [`LinalgError::Singular`] when `R` has a (near-)zero diagonal entry,
    ///   i.e. the columns of `a` are linearly dependent.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch(format!(
                "solve_least_squares: matrix has {m} rows but rhs has length {}",
                b.len()
            )));
        }
        let y = self.apply_qt(b);
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        let scale = self.packed.max_abs().max(1.0);
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            let d = self.packed[(i, i)];
            if d.abs() < 1e-12 * scale {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Borrow of the packed factorization (R above diagonal, reflectors
    /// below). Primarily for diagnostics and tests.
    pub fn packed(&self) -> &Matrix {
        &self.packed
    }
}

/// Convenience one-shot least-squares solve: `argmin_x ||a x - b||₂`.
///
/// # Errors
///
/// Propagates factorization/solve failures from [`Qr`].
///
/// # Examples
///
/// ```
/// use vmin_linalg::{lstsq, Matrix};
///
/// let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]])?;
/// let x = lstsq(&a, &[1.0, 1.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// # Ok::<(), vmin_linalg::LinalgError>(())
/// ```
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::factor(a)?.solve_least_squares(b)
}

/// Ridge regression solve: `argmin_x ||a x - b||² + lambda ||x||²` via the
/// (jittered) normal equations and Cholesky.
///
/// With `lambda = 0` this reduces to ordinary least squares and may fail for
/// rank-deficient `a`; use a small positive `lambda` for collinear features.
///
/// # Errors
///
/// - [`LinalgError::InvalidArgument`] when `lambda < 0`.
/// - [`LinalgError::ShapeMismatch`] when `b.len() != a.rows()`.
/// - Factorization errors when the regularized Gram matrix is not positive
///   definite.
pub fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if lambda < 0.0 {
        return Err(LinalgError::InvalidArgument(format!(
            "ridge lambda must be non-negative, got {lambda}"
        )));
    }
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch(format!(
            "ridge: matrix has {} rows but rhs has length {}",
            a.rows(),
            b.len()
        )));
    }
    let mut g = a.gram();
    g.add_diagonal(lambda);
    let aty = a.matvec_t(b)?;
    crate::cholesky::Cholesky::factor(&g)?.solve(&aty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_solves_square_system_exactly() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = lstsq(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn qr_least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5],
            vec![1.0, 1.5],
            vec![1.0, 2.5],
            vec![1.0, 3.5],
        ])
        .unwrap();
        let b = [1.1, 1.9, 3.1, 3.9];
        let x_qr = lstsq(&a, &b).unwrap();
        let x_ne = ridge(&a, &b, 0.0).unwrap();
        assert!((x_qr[0] - x_ne[0]).abs() < 1e-9);
        assert!((x_qr[1] - x_ne[1]).abs() < 1e-9);
    }

    #[test]
    fn qr_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, -1.0], vec![0.5, 0.5]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lstsq(&a, &b).unwrap();
        let pred = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(&pred).map(|(bi, pi)| bi - pi).collect();
        // aᵀ r ≈ 0
        let atr = a.transpose().matvec(&resid).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-10, "normal equations violated: {v}");
        }
    }

    #[test]
    fn qr_rejects_wide_matrices() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        // Second column is 2x the first.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let b = [3.0, 3.0, 3.0];
        let x0 = ridge(&a, &b, 0.0).unwrap();
        let x1 = ridge(&a, &b, 3.0).unwrap();
        assert!((x0[0] - 3.0).abs() < 1e-12);
        // (aᵀa + λ) x = aᵀ b → (3 + 3) x = 9 → x = 1.5
        assert!((x1[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ridge_handles_collinearity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let x = ridge(&a, &[1.0, 2.0, 3.0], 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ridge_validates_arguments() {
        let a = Matrix::zeros(2, 1);
        assert!(ridge(&a, &[0.0, 0.0], -1.0).is_err());
        assert!(ridge(&a, &[0.0], 1.0).is_err());
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }

    #[test]
    fn qr_handles_zero_column_gracefully() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 2.0], vec![0.0, 3.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }
}
