//! Property-style tests for the linear-algebra kernels.
//!
//! Each test draws many random cases from a seeded in-tree generator and
//! asserts the property on every draw — the same checks the original
//! proptest suite made, now hermetic (no registry dependencies) and fully
//! reproducible. Enable the `heavy-tests` feature to multiply case counts.

use vmin_linalg::{
    lstsq, normal_cdf, normal_inverse_cdf, pearson, quantile, quantile_higher, Cholesky, Matrix,
};
use vmin_rng::{ChaCha8Rng, Rng, SeedableRng};

/// Randomized cases per property (raised under `heavy-tests`).
fn cases() -> usize {
    if cfg!(feature = "heavy-tests") {
        512
    } else {
        64
    }
}

fn rand_vec(rng: &mut ChaCha8Rng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect()
}

fn rand_matrix(rng: &mut ChaCha8Rng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, rand_vec(rng, rows * cols)).expect("shape matches")
}

#[test]
fn transpose_involution() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    for _ in 0..cases() {
        let m = rand_matrix(&mut rng, 4, 3);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn matmul_associative() {
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    for _ in 0..cases() {
        let a = rand_matrix(&mut rng, 3, 3);
        let b = rand_matrix(&mut rng, 3, 3);
        let c = rand_matrix(&mut rng, 3, 3);
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!((&lhs - &rhs).max_abs() < 1e-9);
    }
}

#[test]
fn gram_is_symmetric_psd_diagonal() {
    let mut rng = ChaCha8Rng::seed_from_u64(103);
    for _ in 0..cases() {
        let m = rand_matrix(&mut rng, 5, 3);
        let g = m.gram();
        for i in 0..3 {
            assert!(g[(i, i)] >= -1e-12);
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn cholesky_roundtrip_on_jittered_gram() {
    let mut rng = ChaCha8Rng::seed_from_u64(104);
    for _ in 0..cases() {
        let m = rand_matrix(&mut rng, 6, 3);
        let mut g = m.gram();
        g.add_diagonal(1.0); // guarantee positive definiteness
        let c = Cholesky::factor(&g).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        assert!((&back - &g).max_abs() < 1e-9);
    }
}

#[test]
fn cholesky_solve_residual_small() {
    let mut rng = ChaCha8Rng::seed_from_u64(105);
    for _ in 0..cases() {
        let m = rand_matrix(&mut rng, 6, 4);
        let b = rand_vec(&mut rng, 4);
        let mut g = m.gram();
        g.add_diagonal(1.0);
        let c = Cholesky::factor(&g).unwrap();
        let x = c.solve(&b).unwrap();
        let gx = g.matvec(&x).unwrap();
        for i in 0..4 {
            assert!((gx[i] - b[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn lstsq_recovers_planted_coefficients() {
    let mut rng = ChaCha8Rng::seed_from_u64(106);
    for _ in 0..cases() {
        let m = rand_matrix(&mut rng, 8, 3);
        let beta = rand_vec(&mut rng, 3);
        // Make columns well-conditioned by jittering the diagonal block.
        let mut a = m.clone();
        for j in 0..3 {
            a[(j, j)] += 25.0;
        }
        let y = a.matvec(&beta).unwrap();
        let hat = lstsq(&a, &y).unwrap();
        for j in 0..3 {
            assert!(
                (hat[j] - beta[j]).abs() < 1e-6,
                "expected {} got {}",
                beta[j],
                hat[j]
            );
        }
    }
}

#[test]
fn quantile_within_range() {
    let mut rng = ChaCha8Rng::seed_from_u64(107);
    for _ in 0..cases() {
        let data: Vec<f64> = rand_vec(&mut rng, 20).iter().map(|x| x.abs()).collect();
        let p = rng.gen_range(0.0..=1.0);
        let q = quantile(&data, p).unwrap();
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(q >= lo - 1e-12 && q <= hi + 1e-12);
    }
}

#[test]
fn quantile_monotone_in_p() {
    let mut rng = ChaCha8Rng::seed_from_u64(108);
    for _ in 0..cases() {
        let data = rand_vec(&mut rng, 15);
        let p1 = rng.gen_range(0.0..=1.0);
        let p2 = rng.gen_range(0.0..=1.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(quantile(&data, lo).unwrap() <= quantile(&data, hi).unwrap() + 1e-12);
    }
}

#[test]
fn quantile_higher_reaches_level() {
    let mut rng = ChaCha8Rng::seed_from_u64(109);
    for _ in 0..cases() {
        let data = rand_vec(&mut rng, 15);
        let p = rng.gen_range(0.0..=1.0);
        let q = quantile_higher(&data, p).unwrap();
        let cdf = data.iter().filter(|&&x| x <= q).count() as f64 / data.len() as f64;
        assert!(cdf >= p - 1e-12, "cdf at q={} is {} < p={}", q, cdf, p);
    }
}

#[test]
fn pearson_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(110);
    for _ in 0..cases() {
        let a = rand_vec(&mut rng, 12);
        let b = rand_vec(&mut rng, 12);
        let r = pearson(&a, &b);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }
}

#[test]
fn pearson_scale_invariant() {
    let mut rng = ChaCha8Rng::seed_from_u64(111);
    for _ in 0..cases() {
        let a = rand_vec(&mut rng, 12);
        let b = rand_vec(&mut rng, 12);
        let s = rng.gen_range(0.1..10.0);
        let r1 = pearson(&a, &b);
        let scaled: Vec<f64> = b.iter().map(|x| s * x + 3.0).collect();
        let r2 = pearson(&a, &scaled);
        assert!((r1 - r2).abs() < 1e-8);
    }
}

#[test]
fn probit_cdf_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(112);
    for _ in 0..cases() {
        let p = rng.gen_range(0.001..0.999);
        let z = normal_inverse_cdf(p).unwrap();
        assert!((normal_cdf(z) - p).abs() < 1e-5);
    }
}
