//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use vmin_linalg::{
    lstsq, normal_cdf, normal_inverse_cdf, pearson, quantile, quantile_higher, Cholesky, Matrix,
};

/// Strategy: a well-conditioned random matrix of the given shape.
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("shape matches"))
}

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, len)
}

proptest! {
    #[test]
    fn transpose_involution(m in matrix_strategy(4, 3)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
    ) {
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!((&lhs - &rhs).max_abs() < 1e-9);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal(m in matrix_strategy(5, 3)) {
        let g = m.gram();
        for i in 0..3 {
            prop_assert!(g[(i, i)] >= -1e-12);
            for j in 0..3 {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_roundtrip_on_jittered_gram(m in matrix_strategy(6, 3)) {
        let mut g = m.gram();
        g.add_diagonal(1.0); // guarantee positive definiteness
        let c = Cholesky::factor(&g).unwrap();
        let back = c.l().matmul(&c.l().transpose()).unwrap();
        prop_assert!((&back - &g).max_abs() < 1e-9);
    }

    #[test]
    fn cholesky_solve_residual_small(m in matrix_strategy(6, 4), b in vec_strategy(4)) {
        let mut g = m.gram();
        g.add_diagonal(1.0);
        let c = Cholesky::factor(&g).unwrap();
        let x = c.solve(&b).unwrap();
        let gx = g.matvec(&x).unwrap();
        for i in 0..4 {
            prop_assert!((gx[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_recovers_planted_coefficients(
        m in matrix_strategy(8, 3),
        beta in vec_strategy(3),
    ) {
        // Make columns well-conditioned by jittering the diagonal block.
        let mut a = m.clone();
        for j in 0..3 {
            a[(j, j)] += 25.0;
        }
        let y = a.matvec(&beta).unwrap();
        let hat = lstsq(&a, &y).unwrap();
        for j in 0..3 {
            prop_assert!((hat[j] - beta[j]).abs() < 1e-6,
                "expected {} got {}", beta[j], hat[j]);
        }
    }

    #[test]
    fn quantile_within_range(mut data in vec_strategy(20), p in 0.0f64..=1.0) {
        data.iter_mut().for_each(|x| *x = x.abs());
        let q = quantile(&data, p).unwrap();
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12);
    }

    #[test]
    fn quantile_monotone_in_p(data in vec_strategy(15), p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(quantile(&data, lo).unwrap() <= quantile(&data, hi).unwrap() + 1e-12);
    }

    #[test]
    fn quantile_higher_reaches_level(data in vec_strategy(15), p in 0.0f64..=1.0) {
        let q = quantile_higher(&data, p).unwrap();
        let cdf = data.iter().filter(|&&x| x <= q).count() as f64 / data.len() as f64;
        prop_assert!(cdf >= p - 1e-12, "cdf at q={} is {} < p={}", q, cdf, p);
    }

    #[test]
    fn pearson_bounded(a in vec_strategy(12), b in vec_strategy(12)) {
        let r = pearson(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn pearson_scale_invariant(a in vec_strategy(12), b in vec_strategy(12), s in 0.1f64..10.0) {
        let r1 = pearson(&a, &b);
        let scaled: Vec<f64> = b.iter().map(|x| s * x + 3.0).collect();
        let r2 = pearson(&a, &scaled);
        prop_assert!((r1 - r2).abs() < 1e-8);
    }

    #[test]
    fn probit_cdf_roundtrip(p in 0.001f64..0.999) {
        let z = normal_inverse_cdf(p).unwrap();
        prop_assert!((normal_cdf(z) - p).abs() < 1e-5);
    }
}
