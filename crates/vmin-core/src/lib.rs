//! # vmin-core
//!
//! The paper's Vmin interval-prediction framework: scenario definitions,
//! model zoo, fold pipelines, cross-validated experiment drivers and table
//! formatters.
//!
//! This crate glues the substrates together:
//!
//! 1. [`assemble_dataset`] turns a simulated burn-in [`Campaign`]
//!    (`vmin-silicon`) into a supervised dataset for a given read point,
//!    temperature and [`FeatureSet`] (§III-A feature rules).
//! 2. [`PointModel`] / [`RegionMethod`] enumerate the paper's five point
//!    regressors and nine interval predictors (§IV-C/E).
//! 3. [`run_point_cell`] / [`run_region_cell`] /
//!    [`run_feature_set_study`] reproduce Fig. 2, Table III and
//!    Table IV / Fig. 3 under the §IV-B protocol (4-fold CV, shared seed,
//!    75/25 CQR calibration split, α = 0.1).
//! 4. [`VminPredictor`] is the deployable artifact: fit once, then query
//!    `interval(chip_features)` — with [`VminPredictor::flags_spec_risk`]
//!    implementing the min-spec screening decision of Fig. 1.
//!
//! ## Example
//!
//! ```
//! use vmin_core::{assemble_dataset, run_region_cell, ExperimentConfig,
//!                 FeatureSet, PointModel, RegionMethod};
//! use vmin_silicon::{Campaign, DatasetSpec};
//!
//! let campaign = Campaign::run(&DatasetSpec::small(), 7);
//! let cell = run_region_cell(
//!     &campaign,
//!     0,                                   // read point: time 0
//!     1,                                   // temperature: 25 °C
//!     RegionMethod::Cqr(PointModel::Linear),
//!     FeatureSet::Both,
//!     &ExperimentConfig::fast(),
//! )?;
//! assert!(cell.mean_length > 0.0);
//! # Ok::<(), vmin_core::ExperimentError>(())
//! ```
//!
//! [`Campaign`]: vmin_silicon::Campaign

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops are kept where they mirror the underlying matrix math.
#![allow(clippy::needless_range_loop)]

mod binning;
mod degradation;
mod experiment;
mod fleet;
mod flow;
mod reliability;
mod report;
mod scenario;
mod screening;
mod streaming;
mod zoo;

pub use binning::{bin_population, BinningReport, BinningScheme};
pub use degradation::{
    sanitize_campaign, ClassDisposition, DegradationError, DegradationPolicy, RepairLog,
};
pub use experiment::{
    onchip_monitor_gain, run_feature_set_study, run_point_cell, run_point_cell_on, run_region_cell,
    run_region_cell_on, ExperimentConfig, ExperimentError, FeatureSetSummary,
};
pub use fleet::{fleet_screen, FleetError, FleetScreenConfig, FleetScreenReport};
pub use flow::{
    eval_point_fold, eval_region_fold, FlowError, PointEval, RegionEval, SanitizedFit,
    VminPredictor, CFS_MAX_FEATURES, CFS_POOL,
};
pub use reliability::{forecast_fleet, ChipForecast, FleetReport};
pub use report::{
    format_feature_set_table, format_point_table, format_region_table, format_repair_log,
};
pub use scenario::{
    assemble_dataset, assemble_dataset_with_trends, assemble_stream_snapshot, monitor_read_points,
    FeatureSet, ScenarioError,
};
pub use screening::{simulate_screening, ScreeningDecision, ScreeningPolicy, ScreeningReport};
pub use streaming::{run_stream, ReadPointStats, StreamConfig, StreamReport};
// The canonical readers for `VMIN_*` environment knobs (they live in
// `vmin-trace`, the workspace's root dependency, so every crate shares one
// implementation; re-exported here because most tools depend on vmin-core).
pub use vmin_trace::{env_flag, env_usize};
pub use zoo::{ModelConfig, PointModel, RegionMethod};
