//! Graceful degradation under dirty measurement data.
//!
//! [`sanitize_campaign`] assembles the supervised dataset for a scenario and
//! runs it through the repair policy before any model sees it:
//!
//! 1. campaign-level **stuck-sensor detection** (a monitor frozen at its
//!    first read across read points) voids the stale repeats so imputation
//!    replaces them;
//! 2. dead (all-NaN) monitor columns are dropped; when too many monitors are
//!    gone the policy **falls back to the parametric-only feature set** —
//!    the Table IV trade — and the interval-length cost of that fallback is
//!    recorded in the [`RepairLog`];
//! 3. duplicated chips are removed, right-censored Vmin rows excluded,
//!    remaining NaNs median-imputed, spike outliers MAD-winsorized, and
//!    grossly outlying chips quarantined.
//!
//! With `repair` disabled the policy is *strict*: any contamination yields a
//! typed [`DegradationError::DirtyDataRejected`] instead of a silently
//! miscalibrated fit.

use crate::scenario::{assemble_dataset, monitor_read_points, FeatureSet, ScenarioError};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use vmin_data::hygiene::{
    deduplicate, drop_all_missing_columns, exclude_censored, impute_missing, quarantine_rows,
    winsorize, HygieneError, HygieneReport,
};
use vmin_data::Dataset;
use vmin_linalg::Matrix;
use vmin_silicon::{Campaign, FaultClass};

/// How the pipeline reacts to contaminated measurement data.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPolicy {
    /// `true`: repair and continue; `false`: reject dirty data with a typed
    /// error (strict mode).
    pub repair: bool,
    /// MAD multiplier for the outlier scan and winsorization clip.
    pub outlier_k: f64,
    /// MAD multiplier for per-cell outlier scoring during row quarantine
    /// (looser than `outlier_k`: quarantine targets gross rows).
    pub quarantine_k: f64,
    /// Quarantine a row when more than this fraction of its scored cells
    /// are outliers.
    pub max_row_outlier_fraction: f64,
    /// Censoring ceiling for targets (mV). `None` derives it from the
    /// campaign's Vmin search ceiling.
    pub censor_ceiling_mv: Option<f64>,
    /// Fall back to parametric-only features when more than this fraction
    /// of monitor columns is dead.
    pub monitor_fallback_threshold: f64,
}

impl DegradationPolicy {
    /// The default repairing policy used by the dirty-pipeline tests.
    pub fn repair_default() -> DegradationPolicy {
        DegradationPolicy {
            repair: true,
            outlier_k: 6.0,
            quarantine_k: 8.0,
            max_row_outlier_fraction: 0.3,
            censor_ceiling_mv: None,
            monitor_fallback_threshold: 0.25,
        }
    }

    /// Strict mode: any contamination is a typed error.
    pub fn strict() -> DegradationPolicy {
        DegradationPolicy {
            repair: false,
            ..DegradationPolicy::repair_default()
        }
    }
}

/// Typed failure of the degradation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationError {
    /// Strict mode found contamination and refused to fit on it.
    DirtyDataRejected {
        /// Human-readable account of what was found.
        summary: String,
    },
    /// A hygiene repair pass failed (e.g. nothing left after exclusion).
    Hygiene(HygieneError),
    /// Feature assembly failed.
    Scenario(ScenarioError),
}

impl fmt::Display for DegradationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationError::DirtyDataRejected { summary } => {
                write!(f, "dirty data rejected (repair disabled): {summary}")
            }
            DegradationError::Hygiene(e) => write!(f, "hygiene repair failed: {e}"),
            DegradationError::Scenario(e) => write!(f, "feature assembly failed: {e}"),
        }
    }
}

impl Error for DegradationError {}

impl From<HygieneError> for DegradationError {
    fn from(e: HygieneError) -> Self {
        DegradationError::Hygiene(e)
    }
}

impl From<ScenarioError> for DegradationError {
    fn from(e: ScenarioError) -> Self {
        DegradationError::Scenario(e)
    }
}

/// How one fault class was handled, for the log's per-class enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDisposition {
    /// The fault class.
    pub class: FaultClass,
    /// How many pieces of evidence for this class the pipeline found.
    pub detected: usize,
    /// What was done about it.
    pub action: &'static str,
}

/// Structured account of everything the degradation pipeline detected and
/// repaired on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairLog {
    /// The pre-repair hygiene scan (after stuck-sensor voiding).
    pub scan: HygieneReport,
    /// (chip, monitor) streams frozen at their first read.
    pub stuck_streams: usize,
    /// Stale repeat reads voided for imputation because their stream was
    /// stuck.
    pub stale_cells_voided: usize,
    /// Names of dead (all-NaN) columns that were dropped.
    pub dropped_columns: Vec<String>,
    /// `true` when monitor loss forced the parametric-only fallback.
    pub monitor_fallback: bool,
    /// Monitor columns removed in total (dead + fallback).
    pub monitor_columns_dropped: usize,
    /// Mean interval-length cost (mV) of the parametric-only fallback
    /// relative to keeping the surviving monitors (the Table IV trade).
    /// Filled by [`crate::VminPredictor::fit_sanitized`]; `None` when the
    /// fallback did not trigger or no comparison fit was possible.
    pub fallback_length_cost_mv: Option<f64>,
    /// NaN cells replaced by their column median.
    pub imputed_cells: usize,
    /// Spike cells clipped by MAD winsorization.
    pub clipped_cells: usize,
    /// Row indices (in the post-dedup, post-censoring dataset) quarantined
    /// as gross outliers or for non-finite targets.
    pub quarantined_rows: Vec<usize>,
    /// Exact duplicate rows removed.
    pub duplicates_removed: usize,
    /// Rows excluded because their target sat at the censoring ceiling.
    pub censored_excluded: usize,
}

impl RepairLog {
    fn clean(scan: HygieneReport) -> RepairLog {
        RepairLog {
            scan,
            stuck_streams: 0,
            stale_cells_voided: 0,
            dropped_columns: Vec::new(),
            monitor_fallback: false,
            monitor_columns_dropped: 0,
            fallback_length_cost_mv: None,
            imputed_cells: 0,
            clipped_cells: 0,
            quarantined_rows: Vec::new(),
            duplicates_removed: 0,
            censored_excluded: 0,
        }
    }

    /// Per-class enumeration of how every [`FaultClass`] was handled —
    /// one entry per class, in [`FaultClass::ALL`] order, whether or not
    /// evidence of that class was found.
    pub fn dispositions(&self) -> Vec<ClassDisposition> {
        FaultClass::ALL
            .iter()
            .map(|&class| {
                let (detected, action) = match class {
                    FaultClass::NanDropout => {
                        // Dropped cells in surviving columns are imputed;
                        // stale stuck reads also surface here post-voiding.
                        (self.imputed_cells, "median-imputed")
                    }
                    FaultClass::StuckSensor => {
                        (self.stuck_streams, "stale reads voided and imputed")
                    }
                    FaultClass::SpikeOutlier => (
                        self.clipped_cells + self.quarantined_rows.len(),
                        "MAD-winsorized; gross rows quarantined",
                    ),
                    FaultClass::ColumnLoss => (
                        self.dropped_columns.len(),
                        if self.monitor_fallback {
                            "dead columns dropped; parametric-only fallback"
                        } else {
                            "dead columns dropped"
                        },
                    ),
                    FaultClass::CensoredVmin => (
                        self.censored_excluded,
                        "censored rows excluded from fitting",
                    ),
                    FaultClass::DuplicateChip => {
                        (self.duplicates_removed, "duplicate rows removed")
                    }
                    FaultClass::RetestJitter => (
                        // Zero-mean retest noise is not separable from tester
                        // repeatability; conformal calibration absorbs it by
                        // widening intervals.
                        0,
                        "absorbed by conformal calibration margin",
                    ),
                };
                ClassDisposition {
                    class,
                    detected,
                    action,
                }
            })
            .collect()
    }

    /// Whether the pipeline found evidence of `class` (always `true` for
    /// [`FaultClass::RetestJitter`], which is absorbed rather than detected).
    pub fn addresses(&self, class: FaultClass) -> bool {
        match class {
            FaultClass::RetestJitter => true,
            _ => self
                .dispositions()
                .iter()
                .any(|d| d.class == class && d.detected > 0),
        }
    }

    /// Total number of repair actions taken.
    pub fn total_repairs(&self) -> usize {
        self.imputed_cells
            + self.clipped_cells
            + self.quarantined_rows.len()
            + self.duplicates_removed
            + self.censored_excluded
            + self.dropped_columns.len()
            + self.stale_cells_voided
    }

    /// One-line-per-class summary for experiment reports.
    pub fn summary(&self) -> String {
        let mut out = String::from("repair log:\n");
        for d in self.dispositions() {
            out.push_str(&format!(
                "  {:<14} detected {:>5}  {}\n",
                d.class.name(),
                d.detected,
                d.action
            ));
        }
        if self.monitor_fallback {
            match self.fallback_length_cost_mv {
                Some(cost) => out.push_str(&format!(
                    "  parametric-only fallback active (interval-length cost {cost:+.1} mV)\n"
                )),
                None => out.push_str("  parametric-only fallback active\n"),
            }
        }
        out
    }
}

impl fmt::Display for RepairLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// A (chip, monitor) stream frozen at its first read.
struct StuckStream {
    chip: usize,
    is_rod: bool,
    monitor: usize,
}

/// Detects streams whose later reads bitwise-equal the first read. Tester
/// repeatability noise makes exact equality across reads essentially
/// impossible on a healthy sensor, so a majority of frozen repeats is a
/// reliable stuck signature even when other faults later hit the stream.
fn detect_stuck_streams(campaign: &Campaign) -> Vec<StuckStream> {
    let n_reads = campaign.read_points.len();
    if n_reads < 2 {
        return Vec::new();
    }
    let majority = n_reads.div_ceil(2);
    let mut stuck = Vec::new();
    for (i, chip) in campaign.chips.iter().enumerate() {
        for j in 0..campaign.spec.monitors.rod_count {
            let first = chip.rod[0][j];
            if !first.is_finite() {
                continue;
            }
            let frozen = (1..n_reads)
                .filter(|&k| chip.rod[k][j].to_bits() == first.to_bits())
                .count();
            if frozen >= majority {
                stuck.push(StuckStream {
                    chip: i,
                    is_rod: true,
                    monitor: j,
                });
            }
        }
        for j in 0..campaign.spec.monitors.cpd_count {
            let first = chip.cpd[0][j];
            if !first.is_finite() {
                continue;
            }
            let frozen = (1..n_reads)
                .filter(|&k| chip.cpd[k][j].to_bits() == first.to_bits())
                .count();
            if frozen >= majority {
                stuck.push(StuckStream {
                    chip: i,
                    is_rod: false,
                    monitor: j,
                });
            }
        }
    }
    stuck
}

/// Voids (sets to NaN) the stale repeat reads of stuck streams in the
/// assembled dataset, so imputation replaces them with population medians
/// instead of trusting frozen values. Returns the voided dataset and the
/// number of voided cells. Read point 0 cells are kept: the first read is
/// the one genuine measurement a stuck sensor delivers.
fn void_stale_reads(
    ds: &Dataset,
    campaign: &Campaign,
    read_point: usize,
    stuck: &[StuckStream],
) -> Result<(Dataset, usize), DegradationError> {
    let stale_points: Vec<usize> = monitor_read_points(read_point)
        .into_iter()
        .filter(|&k| k > 0)
        .collect();
    if stuck.is_empty() || stale_points.is_empty() {
        return Ok((ds.clone(), 0));
    }
    let col_of: BTreeMap<&str, usize> = ds
        .names()
        .iter()
        .enumerate()
        .map(|(j, n)| (n.as_str(), j))
        .collect();
    let (rows, cols) = (ds.n_samples(), ds.n_features());
    let mut data = ds.features().as_slice().to_vec();
    let mut voided = 0usize;
    for &k in &stale_points {
        let rod_names = campaign.rod_names(k);
        let cpd_names = campaign.cpd_names(k);
        for s in stuck {
            if s.chip >= rows {
                continue; // duplicated chips appended past the original count
            }
            let name = if s.is_rod {
                &rod_names[s.monitor]
            } else {
                &cpd_names[s.monitor]
            };
            if let Some(&j) = col_of.get(name.as_str()) {
                let idx = s.chip * cols + j;
                if data[idx].is_finite() {
                    data[idx] = f64::NAN;
                    voided += 1;
                }
            }
        }
    }
    let features = Matrix::from_vec(rows, cols, data)
        .map_err(|e| DegradationError::Scenario(ScenarioError::Shape(e.to_string())))?;
    let out = Dataset::new(features, ds.targets().to_vec(), ds.names().to_vec())
        .map_err(HygieneError::from)?;
    Ok((out, voided))
}

/// True for on-chip monitor feature columns (ROD/CPD reads and their
/// engineered deltas), false for parametric columns.
fn is_monitor_column(name: &str) -> bool {
    name.starts_with("rod_") || name.starts_with("cpd_")
}

/// Assembles the dataset for `(read_point, temp_idx, feature_set)` and runs
/// it through `policy`, returning the model-ready dataset and the
/// [`RepairLog`] of everything that was detected and repaired.
///
/// # Errors
///
/// - [`DegradationError::DirtyDataRejected`] when `policy.repair` is off and
///   contamination was found;
/// - [`DegradationError::Hygiene`] when a repair pass fails (e.g. every row
///   censored away);
/// - [`DegradationError::Scenario`] for invalid scenario indices.
pub fn sanitize_campaign(
    campaign: &Campaign,
    read_point: usize,
    temp_idx: usize,
    feature_set: FeatureSet,
    policy: &DegradationPolicy,
) -> Result<(Dataset, RepairLog), DegradationError> {
    let raw = assemble_dataset(campaign, read_point, temp_idx, feature_set)?;
    let ceiling = policy
        .censor_ceiling_mv
        .unwrap_or_else(|| campaign.spec.vmin_test.search_high.to_millivolts());
    let use_onchip = matches!(feature_set, FeatureSet::OnChip | FeatureSet::Both);

    let stuck = if use_onchip {
        detect_stuck_streams(campaign)
    } else {
        Vec::new()
    };

    if !policy.repair {
        let scan = HygieneReport::scan(&raw, policy.outlier_k, Some(ceiling));
        // Strict mode rejects *structural* contamination only: MAD-outlier
        // cells occur naturally in heavy-tailed parametrics (lognormal IDDQ)
        // and are no proof of corruption.
        let structurally_dirty = scan.total_missing() > 0
            || scan.duplicate_rows > 0
            || scan.censored_targets > 0
            || scan.non_finite_targets > 0
            || !stuck.is_empty();
        if !structurally_dirty {
            return Ok((raw, RepairLog::clean(scan)));
        }
        return Err(DegradationError::DirtyDataRejected {
            summary: format!(
                "{} missing cells, {} outlier cells, {} duplicate rows, \
                 {} censored targets, {} non-finite targets, {} stuck streams",
                scan.total_missing(),
                scan.total_outliers(),
                scan.duplicate_rows,
                scan.censored_targets,
                scan.non_finite_targets,
                stuck.len()
            ),
        });
    }

    // 1. Void stale reads of stuck streams so imputation replaces them.
    let (voided, stale_cells_voided) = void_stale_reads(&raw, campaign, read_point, &stuck)?;
    let scan = HygieneReport::scan(&voided, policy.outlier_k, Some(ceiling));

    // 2. Drop dead columns; fall back to parametric-only if the monitor
    //    bank took too much damage.
    let (mut ds, dropped_columns) = drop_all_missing_columns(&voided)?;
    let total_monitor_cols = raw.names().iter().filter(|n| is_monitor_column(n)).count();
    let dead_monitor_cols = dropped_columns
        .iter()
        .filter(|n| is_monitor_column(n))
        .count();
    let mut monitor_columns_dropped = dead_monitor_cols;
    let has_parametric = raw.names().iter().any(|n| !is_monitor_column(n));
    let mut monitor_fallback = false;
    if has_parametric
        && total_monitor_cols > 0
        && dead_monitor_cols as f64 / total_monitor_cols as f64 > policy.monitor_fallback_threshold
    {
        let parametric_idx: Vec<usize> = ds
            .names()
            .iter()
            .enumerate()
            .filter(|(_, n)| !is_monitor_column(n))
            .map(|(j, _)| j)
            .collect();
        monitor_columns_dropped = total_monitor_cols;
        ds = ds
            .subset_columns(&parametric_idx)
            .map_err(HygieneError::from)?;
        monitor_fallback = true;
    }

    // 3. Row-level repairs: dedup, censoring, quarantine.
    let (ds, duplicates_removed) = deduplicate(&ds)?;
    let (ds, censored_excluded) = exclude_censored(&ds, ceiling)?;
    let (ds, quarantined_rows) =
        quarantine_rows(&ds, policy.quarantine_k, policy.max_row_outlier_fraction)?;

    // 4. Cell-level repairs: impute what's missing, clip what spikes.
    let (ds, imputed_cells) = impute_missing(&ds)?;
    let (ds, clipped_cells) = winsorize(&ds, policy.outlier_k)?;

    let log = RepairLog {
        scan,
        stuck_streams: stuck.len(),
        stale_cells_voided,
        dropped_columns,
        monitor_fallback,
        monitor_columns_dropped,
        fallback_length_cost_mv: None,
        imputed_cells,
        clipped_cells,
        quarantined_rows,
        duplicates_removed,
        censored_excluded,
    };
    Ok((ds, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmin_silicon::{CorruptionConfig, CorruptionInjector, DatasetSpec};

    fn clean_campaign() -> Campaign {
        Campaign::run(&DatasetSpec::small(), 21)
    }

    fn dirty_campaign(rate: f64, seed: u64) -> Campaign {
        let injector = CorruptionInjector::new(CorruptionConfig::mixed(rate), seed).unwrap();
        injector.corrupt(&clean_campaign()).0
    }

    #[test]
    fn clean_campaign_passes_strict_mode() {
        let c = clean_campaign();
        let (ds, log) =
            sanitize_campaign(&c, 0, 1, FeatureSet::Both, &DegradationPolicy::strict()).unwrap();
        assert_eq!(ds.n_samples(), c.chip_count());
        assert_eq!(log.scan.total_missing(), 0);
        assert_eq!(log.scan.duplicate_rows, 0);
        assert_eq!(log.scan.censored_targets, 0);
        assert_eq!(log.total_repairs(), 0);
    }

    #[test]
    fn strict_mode_rejects_dirty_data_with_typed_error() {
        let c = dirty_campaign(0.1, 5);
        let err = sanitize_campaign(&c, 0, 1, FeatureSet::Both, &DegradationPolicy::strict())
            .unwrap_err();
        assert!(
            matches!(err, DegradationError::DirtyDataRejected { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn repair_produces_finite_model_ready_dataset() {
        let c = dirty_campaign(0.1, 5);
        let (ds, log) = sanitize_campaign(
            &c,
            0,
            1,
            FeatureSet::Both,
            &DegradationPolicy::repair_default(),
        )
        .unwrap();
        assert!(ds.features().as_slice().iter().all(|v| v.is_finite()));
        assert!(ds.targets().iter().all(|t| t.is_finite()));
        assert!(log.total_repairs() > 0);
        assert!(log.imputed_cells > 0, "NaN dropout should force imputation");
        assert!(log.duplicates_removed > 0, "duplicated chips should dedup");
        assert!(log.censored_excluded > 0, "ceiling rows should drop");
    }

    #[test]
    fn stuck_streams_are_detected_and_voided_in_field() {
        let injector = CorruptionInjector::new(
            CorruptionConfig {
                stuck_sensor_rate: 0.05,
                ..CorruptionConfig::clean()
            },
            3,
        )
        .unwrap();
        let c = injector.corrupt(&clean_campaign()).0;
        // Read point 3 consumes monitor reads {0, 1, 2}; reads 1 and 2 of a
        // stuck stream are stale.
        let (ds, log) = sanitize_campaign(
            &c,
            3,
            1,
            FeatureSet::OnChip,
            &DegradationPolicy::repair_default(),
        )
        .unwrap();
        assert!(log.stuck_streams > 0);
        assert_eq!(log.stale_cells_voided, 2 * log.stuck_streams);
        assert_eq!(log.imputed_cells, log.stale_cells_voided);
        assert!(ds.features().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stuck_detection_has_no_false_positives_on_clean_data() {
        let c = clean_campaign();
        assert!(detect_stuck_streams(&c).is_empty());
    }

    #[test]
    fn heavy_column_loss_triggers_parametric_fallback() {
        let injector = CorruptionInjector::new(
            CorruptionConfig {
                column_loss_rate: 0.5,
                ..CorruptionConfig::clean()
            },
            11,
        )
        .unwrap();
        let c = injector.corrupt(&clean_campaign()).0;
        let (ds, log) = sanitize_campaign(
            &c,
            0,
            1,
            FeatureSet::Both,
            &DegradationPolicy::repair_default(),
        )
        .unwrap();
        assert!(
            log.monitor_fallback,
            "50% column loss should trip the fallback"
        );
        assert!(ds.names().iter().all(|n| !is_monitor_column(n)));
        assert!(log.addresses(FaultClass::ColumnLoss));
    }

    #[test]
    fn dispositions_enumerate_every_class() {
        let c = dirty_campaign(0.12, 9);
        let (_, log) = sanitize_campaign(
            &c,
            0,
            1,
            FeatureSet::Both,
            &DegradationPolicy::repair_default(),
        )
        .unwrap();
        let dispositions = log.dispositions();
        assert_eq!(dispositions.len(), FaultClass::ALL.len());
        for class in FaultClass::ALL {
            assert!(dispositions.iter().any(|d| d.class == class));
        }
        let text = log.summary();
        for class in FaultClass::ALL {
            assert!(text.contains(class.name()), "summary misses {class}");
        }
    }

    #[test]
    fn parametric_only_scenarios_skip_monitor_repairs() {
        let c = dirty_campaign(0.05, 2);
        let (ds, log) = sanitize_campaign(
            &c,
            0,
            1,
            FeatureSet::Parametric,
            &DegradationPolicy::repair_default(),
        )
        .unwrap();
        assert_eq!(log.stuck_streams, 0);
        assert!(!log.monitor_fallback);
        assert!(ds.names().iter().all(|n| !is_monitor_column(n)));
    }
}
