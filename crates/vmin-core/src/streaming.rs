//! The streaming in-field driver: fit at production test, then keep the
//! coverage guarantee alive as chips report telemetry across read points.
//!
//! [`run_stream`] is the deployment loop the paper's §V sketches but the
//! batch experiment drivers cannot exercise: a CQR predictor is fitted and
//! calibrated once on the production-test snapshot (read point 0), then
//! every evaluation chip streams `(monitor snapshot, measured Vmin)` pairs
//! through the read points in fixed fleet order. The static `q̂` rides along
//! for comparison while an [`AdaptiveCalibrator`] maintains the rolling
//! window, ACI feedback and degradation ladder — so one report shows, per
//! read point, exactly what the adaptive layer buys over frozen
//! calibration once aging (or an injected [`vmin_silicon::DriftInjector`]
//! fault) breaks exchangeability.
//!
//! The loop is a pure sequential fold over `(read point, chip)` in index
//! order; all parallelism lives inside model fitting (`vmin-par`, bit-
//! identical by construction), so the report is byte-stable under any
//! `VMIN_THREADS`.

use crate::flow::FlowError;
use crate::scenario::{assemble_stream_snapshot, FeatureSet};
use crate::zoo::{ModelConfig, PointModel};
use vmin_conformal::{AdaptiveCalibrator, AdaptiveConfig, Cqr, LadderState, LadderTransition};
use vmin_data::train_test_split;
use vmin_silicon::Campaign;

/// Configuration of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Temperature index of the Vmin column being tracked.
    pub temp_idx: usize,
    /// Feature families in the telemetry snapshot.
    pub feature_set: FeatureSet,
    /// Base point model; must have a quantile form (GP does not).
    pub model: PointModel,
    /// Hyperparameters for the base model.
    pub model_cfg: ModelConfig,
    /// Target miscoverage α.
    pub alpha: f64,
    /// Fraction of the fleet fitted/calibrated at production test; the
    /// remainder becomes the streaming evaluation fleet.
    pub train_fraction: f64,
    /// Fraction of the training pool held out as the initial calibration
    /// window (the paper's 75/25 CQR split ⇒ `0.25`).
    pub cal_fraction: f64,
    /// Seed for the two deterministic splits.
    pub seed: u64,
    /// The adaptive layer's configuration.
    pub adaptive: AdaptiveConfig,
}

impl StreamConfig {
    /// A fast, test-friendly configuration at miscoverage `alpha`: linear
    /// quantile bands, on-chip + parametric features, 25 °C column.
    pub fn fast(alpha: f64) -> StreamConfig {
        StreamConfig {
            temp_idx: 1,
            feature_set: FeatureSet::Both,
            model: PointModel::Linear,
            model_cfg: ModelConfig::fast(),
            alpha,
            train_fraction: 0.6,
            cal_fraction: 0.4,
            seed: 7,
            adaptive: AdaptiveConfig::for_alpha(alpha),
        }
    }
}

/// Per-read-point tally of one streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPointStats {
    /// Read-point index within the campaign.
    pub read_point: usize,
    /// Evaluation chips streamed at this read point.
    pub n: usize,
    /// Intervals actually issued (not rejected).
    pub issued: usize,
    /// Issued intervals that covered the measured Vmin.
    pub covered: usize,
    /// Observations consumed while the ladder sat in `Rejecting`.
    pub rejected: usize,
    /// How many chips the *frozen* static calibration covered (score ≤
    /// static q̂) — the baseline the adaptive layer is judged against.
    pub static_covered: usize,
    /// Issued intervals with finite width.
    pub finite: usize,
    /// Mean width of the finite issued intervals (0 when none).
    pub mean_finite_width: f64,
    /// Mean ACI miscoverage `α_t` across the read point.
    pub mean_alpha: f64,
    /// Ladder state after the last chip of this read point.
    pub end_state: LadderState,
}

/// The full streaming report.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// One entry per campaign read point, in stream order.
    pub per_read_point: Vec<ReadPointStats>,
    /// Ladder state when the stream ended.
    pub final_state: LadderState,
    /// Most severe ladder state the stream reached.
    pub worst_state: LadderState,
    /// Every ladder transition, in stream order.
    pub transitions: Vec<LadderTransition>,
    /// The frozen production-test `q̂` the static baseline used.
    pub static_qhat: f64,
    /// The ACI miscoverage `α_t` when the stream ended.
    pub alpha_final: f64,
    /// Number of chips in the streaming evaluation fleet.
    pub eval_chips: usize,
}

/// Runs the full streaming deployment loop over `campaign`.
///
/// 1. Split the fleet into a production-test pool and an evaluation fleet;
///    split the pool again into proper-training and calibration chips.
/// 2. Fit a CQR band on the read-point-0 snapshot of the proper chips and
///    calibrate on the calibration chips — the *frozen* static predictor.
/// 3. Seed an [`AdaptiveCalibrator`] with the calibration scores.
/// 4. Stream every evaluation chip at every read point (fleet order within
///    read point, read points ascending) through [`AdaptiveCalibrator::observe`],
///    tallying adaptive and static coverage side by side.
///
/// # Errors
///
/// [`FlowError::InvalidConfig`] for inconsistent fractions/α or a base
/// model without a quantile form; [`FlowError::Inner`] for assembly, model
/// or conformal failures.
///
/// # Examples
///
/// ```
/// use vmin_core::{run_stream, StreamConfig};
/// use vmin_silicon::{Campaign, DatasetSpec};
///
/// let campaign = Campaign::run(&DatasetSpec::small(), 5);
/// let report = run_stream(&campaign, &StreamConfig::fast(0.2))?;
/// assert_eq!(report.per_read_point.len(), campaign.read_points.len());
/// # Ok::<(), vmin_core::FlowError>(())
/// ```
pub fn run_stream(campaign: &Campaign, config: &StreamConfig) -> Result<StreamReport, FlowError> {
    let _span = vmin_trace::span("core.stream.run");
    if !(config.alpha > 0.0 && config.alpha < 1.0) {
        return Err(FlowError::InvalidConfig(format!(
            "alpha must be in (0, 1), got {}",
            config.alpha
        )));
    }
    for (name, f) in [
        ("train_fraction", config.train_fraction),
        ("cal_fraction", config.cal_fraction),
    ] {
        if !(f > 0.0 && f < 1.0) {
            return Err(FlowError::InvalidConfig(format!(
                "{name} must be in (0, 1), got {f}"
            )));
        }
    }
    let n = campaign.chip_count();
    if n < 8 {
        return Err(FlowError::InvalidConfig(format!(
            "streaming needs at least 8 chips to split three ways, got {n}"
        )));
    }

    let snapshot0 = assemble_stream_snapshot(campaign, 0, config.temp_idx, config.feature_set)
        .map_err(|e| FlowError::Inner(e.to_string()))?;

    // Fleet split: pool (fit + calibrate) vs evaluation stream, then pool
    // into proper-training vs calibration chips. Both splits are seeded.
    let fleet = train_test_split(n, config.train_fraction, config.seed);
    let pool = train_test_split(
        fleet.train.len(),
        1.0 - config.cal_fraction,
        config.seed.wrapping_add(1),
    );
    let proper_idx: Vec<usize> = pool.train.iter().map(|&i| fleet.train[i]).collect();
    let cal_idx: Vec<usize> = pool.test.iter().map(|&i| fleet.train[i]).collect();
    let proper = snapshot0.subset_rows(&proper_idx)?;
    let cal = snapshot0.subset_rows(&cal_idx)?;

    let lo = config
        .model
        .make_quantile(config.alpha / 2.0, &config.model_cfg)
        .ok_or_else(|| {
            FlowError::InvalidConfig(format!("{} has no quantile form", config.model))
        })?;
    let hi = config
        .model
        .make_quantile(1.0 - config.alpha / 2.0, &config.model_cfg)
        .ok_or_else(|| {
            FlowError::InvalidConfig(format!("{} has no quantile form", config.model))
        })?;
    let mut cqr = Cqr::new(lo, hi, config.alpha);
    cqr.fit_calibrate(
        proper.features(),
        proper.targets(),
        cal.features(),
        cal.targets(),
    )?;
    let static_qhat = cqr
        .qhat()
        .ok_or_else(|| FlowError::Inner("CQR lost its calibration".into()))?;
    let initial_scores = cqr.scores(cal.features(), cal.targets())?;
    let mut adaptive = AdaptiveCalibrator::new(&initial_scores, config.adaptive.clone())?;

    let mut per_read_point = Vec::with_capacity(campaign.read_points.len());
    for k in 0..campaign.read_points.len() {
        let snapshot = assemble_stream_snapshot(campaign, k, config.temp_idx, config.feature_set)
            .map_err(|e| FlowError::Inner(e.to_string()))?;
        let mut stats = ReadPointStats {
            read_point: k,
            n: 0,
            issued: 0,
            covered: 0,
            rejected: 0,
            static_covered: 0,
            finite: 0,
            mean_finite_width: 0.0,
            mean_alpha: 0.0,
            end_state: adaptive.state(),
        };
        let mut width_sum = 0.0;
        let mut alpha_sum = 0.0;
        for &chip in &fleet.test {
            let band = cqr.predict_raw_band(snapshot.sample(chip))?;
            let y = snapshot.targets()[chip];
            let obs = adaptive.observe(band, y)?;
            stats.n += 1;
            alpha_sum += obs.alpha;
            if obs.score <= static_qhat {
                stats.static_covered += 1;
            }
            match obs.interval {
                Some(iv) => {
                    stats.issued += 1;
                    if obs.covered == Some(true) {
                        stats.covered += 1;
                    }
                    if iv.length().is_finite() {
                        stats.finite += 1;
                        width_sum += iv.length();
                    }
                }
                None => stats.rejected += 1,
            }
        }
        if stats.finite > 0 {
            stats.mean_finite_width = width_sum / stats.finite as f64;
        }
        if stats.n > 0 {
            stats.mean_alpha = alpha_sum / stats.n as f64;
        }
        stats.end_state = adaptive.state();
        vmin_trace::counter_add("core.stream.read_points", 1);
        per_read_point.push(stats);
    }
    vmin_trace::counter_add("core.stream.runs", 1);

    Ok(StreamReport {
        per_read_point,
        final_state: adaptive.state(),
        worst_state: adaptive.worst_state(),
        transitions: adaptive.transitions().to_vec(),
        static_qhat,
        alpha_final: adaptive.alpha(),
        eval_chips: fleet.test.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmin_conformal::with_adaptive;
    use vmin_silicon::{DatasetSpec, DriftClass, DriftFault, DriftInjector};

    fn campaign() -> Campaign {
        Campaign::run(&DatasetSpec::small(), 17)
    }

    #[test]
    fn clean_stream_produces_full_report() {
        let c = campaign();
        let report = with_adaptive(true, || run_stream(&c, &StreamConfig::fast(0.2))).unwrap();
        assert_eq!(report.per_read_point.len(), c.read_points.len());
        assert!(report.eval_chips > 0);
        assert!(report.static_qhat.is_finite());
        for stats in &report.per_read_point {
            assert_eq!(stats.n, report.eval_chips);
            assert_eq!(stats.issued + stats.rejected, stats.n);
        }
        // A clean campaign must never hit the terminal valve.
        assert_ne!(report.worst_state, vmin_conformal::LadderState::Rejecting);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = campaign();
        for bad in [
            StreamConfig {
                alpha: 0.0,
                ..StreamConfig::fast(0.2)
            },
            StreamConfig {
                train_fraction: 1.0,
                ..StreamConfig::fast(0.2)
            },
            StreamConfig {
                cal_fraction: 0.0,
                ..StreamConfig::fast(0.2)
            },
            StreamConfig {
                model: PointModel::GaussianProcess,
                ..StreamConfig::fast(0.2)
            },
        ] {
            assert!(
                matches!(run_stream(&c, &bad), Err(FlowError::InvalidConfig(_))),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn stream_is_deterministic_for_fixed_seed() {
        let c = campaign();
        let cfg = StreamConfig::fast(0.2);
        let (a, b) = with_adaptive(true, || {
            (run_stream(&c, &cfg).unwrap(), run_stream(&c, &cfg).unwrap())
        });
        assert_eq!(a, b);
    }

    #[test]
    fn drifted_stream_reacts_where_clean_stream_does_not() {
        let c = campaign();
        let (drifted, _) = DriftInjector::new(
            vec![DriftFault {
                class: DriftClass::SuddenShift,
                onset: 3,
                magnitude_mv: 60.0,
                fraction: 1.0,
            }],
            3,
        )
        .unwrap()
        .inject(&c);
        let cfg = StreamConfig::fast(0.2);
        let (clean_report, drift_report) = with_adaptive(true, || {
            (
                run_stream(&c, &cfg).unwrap(),
                run_stream(&drifted, &cfg).unwrap(),
            )
        });
        assert!(
            drift_report.worst_state > clean_report.worst_state
                || drift_report.transitions.len() > clean_report.transitions.len(),
            "a 60 mV fleet-wide shift left the ladder untouched: {:?}",
            drift_report.worst_state
        );
        // Pre-onset read points are identical streams.
        assert_eq!(
            clean_report.per_read_point[..3],
            drift_report.per_read_point[..3]
        );
    }

    #[test]
    fn kill_switch_reduces_to_static_coverage() {
        let c = campaign();
        let cfg = StreamConfig::fast(0.2);
        let report = with_adaptive(false, || run_stream(&c, &cfg).unwrap());
        // Disabled: the adaptive tally must equal the static tally at every
        // read point, nothing is rejected, and the ladder never moves.
        for stats in &report.per_read_point {
            assert_eq!(
                stats.covered, stats.static_covered,
                "rp {}",
                stats.read_point
            );
            assert_eq!(stats.rejected, 0);
            assert_eq!(stats.end_state, vmin_conformal::LadderState::Nominal);
        }
        assert!(report.transitions.is_empty());
    }
}
