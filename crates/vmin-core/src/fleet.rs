//! Fused fleet screening: generate → serve without materializing the fleet.
//!
//! [`fleet_screen`] pipes [`CampaignStream`] chunks straight into
//! [`ServeModel::serve_batch`], so a million-chip screening campaign runs in
//! the memory footprint of a single chunk. Because the stream is bit-identical
//! to `Campaign::run` and serving is row-independent, the fused path produces
//! exactly the counts and interval statistics of materializing the whole
//! campaign, assembling features with [`assemble_dataset`], and serving the
//! full matrix — the test suite asserts the equality to the last bit.
//!
//! [`assemble_dataset`]: crate::assemble_dataset

use std::error::Error;
use std::fmt;

use vmin_linalg::Matrix;
use vmin_serve::{ServeError, ServeModel};
use vmin_silicon::{CampaignStream, DatasetSpec};

use crate::scenario::{monitor_read_points, FeatureSet};

/// Error from the fused screening driver.
#[derive(Debug)]
pub enum FleetError {
    /// A read-point or temperature index fell outside the spec's grid.
    Index(String),
    /// The model's feature width does not match the screening feature layout.
    Width {
        /// Width the serve model expects.
        expected: usize,
        /// Width the spec + feature set actually produce.
        got: usize,
    },
    /// Serving a block failed.
    Serve(ServeError),
    /// A chunk's feature buffer could not form a matrix (internal
    /// invariant; surfaced instead of panicking).
    Shape(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Index(msg) => write!(f, "fleet index error: {msg}"),
            FleetError::Width { expected, got } => write!(
                f,
                "model expects {expected} features but the screening layout produces {got}"
            ),
            FleetError::Serve(e) => write!(f, "serve error: {e}"),
            FleetError::Shape(msg) => write!(f, "fleet shape error: {msg}"),
        }
    }
}

impl Error for FleetError {}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

/// Knobs of a fused screening run.
#[derive(Debug, Clone, Copy)]
pub struct FleetScreenConfig {
    /// Burn-in read point whose Vmin is being predicted.
    pub read_point: usize,
    /// Temperature index (into `spec.vmin_test.temperatures`) of the target.
    pub temp_idx: usize,
    /// Feature families the model was trained on.
    pub feature_set: FeatureSet,
    /// Product min-spec in millivolts; a chip whose interval upper bound
    /// crosses it is flagged (the Fig. 1 screening decision).
    pub min_spec_mv: f64,
    /// Rows per serve block handed to [`ServeModel::serve_batch`].
    pub serve_rows: usize,
    /// Generation chunk size; `None` defers to `VMIN_STREAM_CHUNK` / the
    /// stream default. The report is bit-identical at any value.
    pub chunk: Option<usize>,
}

impl FleetScreenConfig {
    /// Screening defaults: read point 0, first temperature, both feature
    /// families, 256-row serve blocks, ambient chunk size.
    pub fn new(min_spec_mv: f64) -> Self {
        FleetScreenConfig {
            read_point: 0,
            temp_idx: 0,
            feature_set: FeatureSet::Both,
            min_spec_mv,
            serve_rows: 256,
            chunk: None,
        }
    }
}

/// Aggregate outcome of a fused screening run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScreenReport {
    /// Chips screened.
    pub chips: usize,
    /// Stream chunks consumed.
    pub blocks: usize,
    /// Feature width served per chip.
    pub n_features: usize,
    /// Chips whose interval upper bound crossed `min_spec_mv`.
    pub flagged: usize,
    /// Chips whose true Vmin fell inside the served interval.
    pub covered: usize,
    /// Ground-truth defective chips seen (for yield accounting).
    pub defective: usize,
    /// Mean served interval length in millivolts.
    pub mean_length_mv: f64,
    /// The threshold the run screened against.
    pub min_spec_mv: f64,
    /// Miscoverage level the model was calibrated at.
    pub alpha: f64,
}

impl FleetScreenReport {
    /// Empirical coverage rate of the run.
    pub fn coverage(&self) -> f64 {
        if self.chips == 0 {
            return 0.0;
        }
        self.covered as f64 / self.chips as f64
    }
}

/// Screens a synthetic fleet end to end: generates chips with
/// [`CampaignStream`], assembles each chunk's feature rows in the exact
/// [`assemble_dataset`] layout, serves them through `model`, and folds the
/// screening decisions into a [`FleetScreenReport`] — without ever holding
/// more than one chunk in memory.
///
/// Determinism: generation is bit-identical to `Campaign::run` at any
/// `VMIN_THREADS` / `VMIN_STREAM_CHUNK`, and serving is row-independent, so
/// the report (including the f64 mean, accumulated in chip order) is
/// bit-identical to the materialize-then-serve path.
///
/// # Errors
///
/// [`FleetError::Index`] when `cfg.read_point` / `cfg.temp_idx` fall outside
/// the spec's grid, [`FleetError::Width`] when the model's feature count does
/// not match the layout implied by `spec` + `cfg.feature_set`, and
/// [`FleetError::Serve`] when batch serving fails.
///
/// [`assemble_dataset`]: crate::assemble_dataset
///
/// # Example
///
/// ```
/// use vmin_conformal::Cqr;
/// use vmin_core::{assemble_dataset, fleet_screen, FeatureSet, FleetScreenConfig};
/// use vmin_models::{GradientBoost, Loss};
/// use vmin_serve::ServeModel;
/// use vmin_silicon::{Campaign, DatasetSpec};
///
/// let mut spec = DatasetSpec::small();
/// spec.chip_count = 30;
/// let train = Campaign::run(&spec, 7);
/// let ds = assemble_dataset(&train, 0, 1, FeatureSet::Both)?;
/// let mut cqr = Cqr::new(
///     GradientBoost::new(Loss::Pinball(0.05)),
///     GradientBoost::new(Loss::Pinball(0.95)),
///     0.1,
/// );
/// cqr.fit_calibrate(ds.features(), ds.targets(), ds.features(), ds.targets())?;
/// let model = ServeModel::from_gbt_cqr(&cqr, None)?;
///
/// let mut cfg = FleetScreenConfig::new(700.0);
/// cfg.temp_idx = 1;
/// let report = fleet_screen(&spec, 8, &model, &cfg)?;
/// assert_eq!(report.chips, spec.chip_count);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fleet_screen(
    spec: &DatasetSpec,
    seed: u64,
    model: &ServeModel,
    cfg: &FleetScreenConfig,
) -> Result<FleetScreenReport, FleetError> {
    let _span = vmin_trace::span("fleet.screen");

    let n_rp = spec.stress.read_points.len();
    if cfg.read_point >= n_rp {
        return Err(FleetError::Index(format!(
            "read_point {} out of range (spec has {n_rp})",
            cfg.read_point
        )));
    }
    let n_temps = spec.vmin_test.temperatures.len();
    if cfg.temp_idx >= n_temps {
        return Err(FleetError::Index(format!(
            "temp_idx {} out of range (spec has {n_temps})",
            cfg.temp_idx
        )));
    }

    let monitor_points = monitor_read_points(cfg.read_point);
    let use_parametric = matches!(cfg.feature_set, FeatureSet::Parametric | FeatureSet::Both);
    let use_onchip = matches!(cfg.feature_set, FeatureSet::OnChip | FeatureSet::Both);
    let d = usize::from(use_parametric) * spec.parametric.total_tests()
        + usize::from(use_onchip)
            * monitor_points.len()
            * (spec.monitors.rod_count + spec.monitors.cpd_count);
    if model.n_features() != d {
        return Err(FleetError::Width {
            expected: model.n_features(),
            got: d,
        });
    }

    let mut chips = 0usize;
    let mut blocks = 0usize;
    let mut flagged = 0usize;
    let mut covered = 0usize;
    let mut defective = 0usize;
    let mut length_sum = 0.0f64;

    let stream = match cfg.chunk {
        Some(c) => CampaignStream::with_chunk(spec, seed, c),
        None => CampaignStream::new(spec, seed),
    };
    for block in stream {
        let rows = block.len();
        // One flat buffer per chunk — the only allocation on the serve side.
        let mut data = vec![0.0f64; rows * d];
        for r in 0..rows {
            let dst = &mut data[r * d..(r + 1) * d];
            let mut col = 0;
            if use_parametric {
                let p = block.parametric(r);
                dst[col..col + p.len()].copy_from_slice(p);
                col += p.len();
            }
            if use_onchip {
                for &k in &monitor_points {
                    let rod = block.rod(r, k);
                    dst[col..col + rod.len()].copy_from_slice(rod);
                    col += rod.len();
                    let cpd = block.cpd(r, k);
                    dst[col..col + cpd.len()].copy_from_slice(cpd);
                    col += cpd.len();
                }
            }
            debug_assert_eq!(col, d);
        }
        let x = Matrix::from_vec(rows, d, data).map_err(|e| FleetError::Shape(e.to_string()))?;
        let intervals = model.serve_batch(&x, cfg.serve_rows.max(1))?;

        for (r, iv) in intervals.iter().enumerate() {
            // Same decision as `VminPredictor::flags_spec_risk`.
            if iv.hi() > cfg.min_spec_mv {
                flagged += 1;
            }
            let truth = block.vmin_mv(r, cfg.read_point, cfg.temp_idx);
            if iv.lo() <= truth && truth <= iv.hi() {
                covered += 1;
            }
            if block.defective(r) {
                defective += 1;
            }
            length_sum += iv.length();
        }
        chips += rows;
        blocks += 1;
    }

    vmin_trace::counter_add("fleet.blocks", blocks as u64);
    vmin_trace::counter_add("fleet.chips", chips as u64);
    vmin_trace::counter_add("fleet.flagged", flagged as u64);

    Ok(FleetScreenReport {
        chips,
        blocks,
        n_features: d,
        flagged,
        covered,
        defective,
        mean_length_mv: if chips == 0 {
            0.0
        } else {
            length_sum / chips as f64
        },
        min_spec_mv: cfg.min_spec_mv,
        alpha: model.alpha(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::assemble_dataset;
    use vmin_conformal::Cqr;
    use vmin_models::{GradientBoost, Loss};
    use vmin_silicon::Campaign;

    fn screening_spec(chips: usize) -> DatasetSpec {
        let mut spec = DatasetSpec::small();
        spec.chip_count = chips;
        spec
    }

    fn fit_model(spec: &DatasetSpec, seed: u64, temp_idx: usize, fs: FeatureSet) -> ServeModel {
        let train = Campaign::run(spec, seed);
        let ds = assemble_dataset(&train, 0, temp_idx, fs).unwrap();
        let mut cqr = Cqr::new(
            GradientBoost::new(Loss::Pinball(0.05)),
            GradientBoost::new(Loss::Pinball(0.95)),
            0.1,
        );
        cqr.fit_calibrate(ds.features(), ds.targets(), ds.features(), ds.targets())
            .unwrap();
        ServeModel::from_gbt_cqr(&cqr, None).unwrap()
    }

    /// The materialize-then-serve reference: same spec/seed/config, but the
    /// whole fleet is generated with `Campaign::run` and served as one
    /// matrix. Accumulates in the same chip order as the fused path.
    fn materialized_report(
        spec: &DatasetSpec,
        seed: u64,
        model: &ServeModel,
        cfg: &FleetScreenConfig,
    ) -> FleetScreenReport {
        let campaign = Campaign::run(spec, seed);
        let ds =
            assemble_dataset(&campaign, cfg.read_point, cfg.temp_idx, cfg.feature_set).unwrap();
        let intervals = model.serve_batch(ds.features(), cfg.serve_rows).unwrap();
        let (mut flagged, mut covered, mut defective) = (0, 0, 0);
        let mut length_sum = 0.0;
        for (chip, iv) in campaign.chips.iter().zip(&intervals) {
            if iv.hi() > cfg.min_spec_mv {
                flagged += 1;
            }
            let truth = chip.vmin_mv[cfg.read_point][cfg.temp_idx];
            if iv.lo() <= truth && truth <= iv.hi() {
                covered += 1;
            }
            if chip.defective {
                defective += 1;
            }
            length_sum += iv.length();
        }
        FleetScreenReport {
            chips: campaign.chip_count(),
            blocks: 0, // not comparable
            n_features: ds.n_features(),
            flagged,
            covered,
            defective,
            mean_length_mv: length_sum / campaign.chip_count() as f64,
            min_spec_mv: cfg.min_spec_mv,
            alpha: model.alpha(),
        }
    }

    #[test]
    fn fused_report_matches_materialize_then_serve_bit_for_bit() {
        let spec = screening_spec(40);
        let model = fit_model(&spec, 5, 1, FeatureSet::Both);
        let mut cfg = FleetScreenConfig::new(700.0);
        cfg.temp_idx = 1;
        cfg.serve_rows = 16;
        let reference = materialized_report(&spec, 9, &model, &cfg);
        for chunk in [1usize, 7, 64] {
            let mut fused_cfg = cfg;
            fused_cfg.chunk = Some(chunk);
            let report = fleet_screen(&spec, 9, &model, &fused_cfg).unwrap();
            assert_eq!(report.chips, reference.chips);
            assert_eq!(report.n_features, reference.n_features);
            assert_eq!(report.flagged, reference.flagged);
            assert_eq!(report.covered, reference.covered);
            assert_eq!(report.defective, reference.defective);
            assert_eq!(
                report.mean_length_mv.to_bits(),
                reference.mean_length_mv.to_bits(),
                "mean interval length must match to the bit"
            );
            assert_eq!(report.alpha, reference.alpha);
        }
    }

    #[test]
    fn report_is_invariant_to_thread_count() {
        let spec = screening_spec(24);
        let model = fit_model(&spec, 3, 0, FeatureSet::OnChip);
        let mut cfg = FleetScreenConfig::new(680.0);
        cfg.feature_set = FeatureSet::OnChip;
        let serial = vmin_par::with_threads(1, || fleet_screen(&spec, 2, &model, &cfg).unwrap());
        let parallel = vmin_par::with_threads(4, || fleet_screen(&spec, 2, &model, &cfg).unwrap());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let spec = screening_spec(12);
        let model = fit_model(&spec, 1, 0, FeatureSet::Both);
        let mut cfg = FleetScreenConfig::new(700.0);
        cfg.feature_set = FeatureSet::Parametric; // narrower layout
        match fleet_screen(&spec, 1, &model, &cfg) {
            Err(FleetError::Width { expected, got }) => {
                assert_eq!(expected, model.n_features());
                assert!(got < expected);
            }
            other => panic!("expected width error, got {other:?}"),
        }
    }

    #[test]
    fn bad_indices_are_rejected() {
        let spec = screening_spec(12);
        let model = fit_model(&spec, 1, 0, FeatureSet::Both);
        let mut cfg = FleetScreenConfig::new(700.0);
        cfg.read_point = 99;
        assert!(matches!(
            fleet_screen(&spec, 1, &model, &cfg),
            Err(FleetError::Index(_))
        ));
        cfg.read_point = 0;
        cfg.temp_idx = 99;
        assert!(matches!(
            fleet_screen(&spec, 1, &model, &cfg),
            Err(FleetError::Index(_))
        ));
    }

    #[test]
    fn flag_count_is_monotone_in_the_threshold() {
        let spec = screening_spec(20);
        let model = fit_model(&spec, 4, 1, FeatureSet::Both);
        let mut strict = FleetScreenConfig::new(0.0);
        strict.temp_idx = 1;
        let mut lax = FleetScreenConfig::new(10_000.0);
        lax.temp_idx = 1;
        let all = fleet_screen(&spec, 6, &model, &strict).unwrap();
        let none = fleet_screen(&spec, 6, &model, &lax).unwrap();
        assert_eq!(all.flagged, all.chips);
        assert_eq!(none.flagged, 0);
        assert!(all.coverage() >= 0.0 && all.coverage() <= 1.0);
    }
}
