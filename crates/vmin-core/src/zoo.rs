//! The model zoo: the paper's five point regressors and nine region
//! predictors, as constructible enums.

use std::fmt;
use vmin_models::{
    GaussianProcess, GradientBoost, LinearRegression, Loss, NeuralNet, NeuralNetParams,
    ObliviousBoost, QuantileLinear, Regressor,
};

/// Training budgets, so tests can shrink the expensive models while the
/// benches keep the paper's exact configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// MLP epochs (paper: 3000).
    pub nn_epochs: usize,
    /// MLP seed.
    pub nn_seed: u64,
    /// Quantile-linear Adam epochs.
    pub qlin_epochs: usize,
    /// Boosting rounds for the XGBoost-style model (paper default: 100).
    pub gbt_rounds: usize,
    /// Boosting rounds for the CatBoost-style model (paper: 100).
    pub cat_rounds: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            nn_epochs: 3000,
            nn_seed: 0,
            qlin_epochs: 2000,
            gbt_rounds: 100,
            cat_rounds: 100,
        }
    }
}

impl ModelConfig {
    /// A reduced budget for fast unit/integration tests.
    pub fn fast() -> Self {
        ModelConfig {
            nn_epochs: 300,
            nn_seed: 0,
            qlin_epochs: 400,
            gbt_rounds: 30,
            cat_rounds: 30,
        }
    }
}

/// The five point-regressor families of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointModel {
    /// Ordinary least squares.
    Linear,
    /// Gaussian process (RBF, likelihood-optimized).
    GaussianProcess,
    /// XGBoost-style gradient-boosted trees.
    Xgboost,
    /// CatBoost-style oblivious-tree boosting.
    CatBoost,
    /// 2-layer neural network (1×16 ReLU).
    NeuralNet,
}

impl PointModel {
    /// All five models, in the paper's presentation order.
    pub const ALL: [PointModel; 5] = [
        PointModel::Linear,
        PointModel::GaussianProcess,
        PointModel::Xgboost,
        PointModel::CatBoost,
        PointModel::NeuralNet,
    ];

    /// Whether this model needs CFS dimensionality reduction (§IV-C: LR, GP
    /// and NN get CFS; the tree ensembles select features intrinsically).
    pub fn uses_cfs(&self) -> bool {
        matches!(
            self,
            PointModel::Linear | PointModel::GaussianProcess | PointModel::NeuralNet
        )
    }

    /// Constructs the point (conditional-mean) regressor.
    pub fn make_point(&self, cfg: &ModelConfig) -> Box<dyn Regressor> {
        match self {
            PointModel::Linear => Box::new(LinearRegression::new()),
            PointModel::GaussianProcess => Box::new(GaussianProcess::paper_default()),
            PointModel::Xgboost => Box::new(GradientBoost::with_params(
                Loss::Squared,
                vmin_models::GradientBoostParams {
                    n_rounds: cfg.gbt_rounds,
                    ..Default::default()
                },
            )),
            PointModel::CatBoost => Box::new(ObliviousBoost::with_params(
                Loss::Squared,
                vmin_models::ObliviousBoostParams {
                    n_rounds: cfg.cat_rounds,
                    ..Default::default()
                },
            )),
            PointModel::NeuralNet => Box::new(NeuralNet::with_params(
                Loss::Squared,
                NeuralNetParams {
                    epochs: cfg.nn_epochs,
                    seed: cfg.nn_seed,
                    ..Default::default()
                },
            )),
        }
    }

    /// Constructs the quantile-`q` regressor of the same family, or `None`
    /// for the GP (whose region prediction is Gaussian, not quantile-based).
    pub fn make_quantile(&self, q: f64, cfg: &ModelConfig) -> Option<Box<dyn Regressor>> {
        match self {
            PointModel::Linear => Some(Box::new(
                QuantileLinear::new(q).with_training(cfg.qlin_epochs, 0.02),
            )),
            PointModel::GaussianProcess => None,
            PointModel::Xgboost => Some(Box::new(GradientBoost::with_params(
                Loss::Pinball(q),
                vmin_models::GradientBoostParams {
                    n_rounds: cfg.gbt_rounds,
                    ..Default::default()
                },
            ))),
            PointModel::CatBoost => Some(Box::new(ObliviousBoost::with_params(
                Loss::Pinball(q),
                vmin_models::ObliviousBoostParams {
                    n_rounds: cfg.cat_rounds,
                    ..Default::default()
                },
            ))),
            PointModel::NeuralNet => Some(Box::new(NeuralNet::with_params(
                Loss::Pinball(q),
                NeuralNetParams {
                    epochs: cfg.nn_epochs,
                    seed: cfg.nn_seed,
                    ..Default::default()
                },
            ))),
        }
    }
}

impl fmt::Display for PointModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PointModel::Linear => "Linear Regression",
            PointModel::GaussianProcess => "GP",
            PointModel::Xgboost => "XGBoost",
            PointModel::CatBoost => "CatBoost",
            PointModel::NeuralNet => "Neural Network",
        };
        f.write_str(s)
    }
}

/// The nine region predictors of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionMethod {
    /// Gaussian-process interval (Eq. 4) — no conformal calibration.
    Gp,
    /// Raw quantile-regression band (no calibration).
    Qr(PointModel),
    /// Conformalized quantile regression (the paper's method).
    Cqr(PointModel),
}

impl RegionMethod {
    /// The nine methods in Table III's row order.
    pub const ALL: [RegionMethod; 9] = [
        RegionMethod::Gp,
        RegionMethod::Qr(PointModel::Linear),
        RegionMethod::Qr(PointModel::NeuralNet),
        RegionMethod::Qr(PointModel::Xgboost),
        RegionMethod::Qr(PointModel::CatBoost),
        RegionMethod::Cqr(PointModel::Linear),
        RegionMethod::Cqr(PointModel::NeuralNet),
        RegionMethod::Cqr(PointModel::Xgboost),
        RegionMethod::Cqr(PointModel::CatBoost),
    ];

    /// Whether the base model needs CFS feature selection.
    pub fn uses_cfs(&self) -> bool {
        match self {
            RegionMethod::Gp => true,
            RegionMethod::Qr(m) | RegionMethod::Cqr(m) => m.uses_cfs(),
        }
    }
}

impl fmt::Display for RegionMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionMethod::Gp => f.write_str("GP"),
            RegionMethod::Qr(m) => write!(f, "QR {m}"),
            RegionMethod::Cqr(m) => write!(f, "CQR {m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmin_linalg::Matrix;

    #[test]
    fn all_point_models_fit_and_predict() {
        let x = Matrix::from_rows(
            &(0..20)
                .map(|i| vec![i as f64, (i * i) as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let y: Vec<f64> = (0..20).map(|i| 2.0 * i as f64 + 1.0).collect();
        let cfg = ModelConfig::fast();
        for kind in PointModel::ALL {
            let mut m = kind.make_point(&cfg);
            m.fit(&x, &y).unwrap_or_else(|e| panic!("{kind}: {e}"));
            let p = m.predict_row(x.row(3)).unwrap();
            assert!(p.is_finite(), "{kind} produced {p}");
        }
    }

    #[test]
    fn quantile_factories_produce_working_models() {
        let x = Matrix::from_rows(&(0..30).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let cfg = ModelConfig::fast();
        for kind in PointModel::ALL {
            match kind.make_quantile(0.9, &cfg) {
                Some(mut m) => {
                    m.fit(&x, &y).unwrap();
                    assert!(m.predict_row(&[5.0]).unwrap().is_finite());
                }
                None => assert_eq!(kind, PointModel::GaussianProcess),
            }
        }
    }

    #[test]
    fn cfs_usage_matches_paper() {
        assert!(PointModel::Linear.uses_cfs());
        assert!(PointModel::GaussianProcess.uses_cfs());
        assert!(PointModel::NeuralNet.uses_cfs());
        assert!(!PointModel::Xgboost.uses_cfs());
        assert!(!PointModel::CatBoost.uses_cfs());
        assert!(RegionMethod::Gp.uses_cfs());
        assert!(!RegionMethod::Cqr(PointModel::CatBoost).uses_cfs());
    }

    #[test]
    fn display_names_match_table_rows() {
        assert_eq!(
            RegionMethod::Cqr(PointModel::CatBoost).to_string(),
            "CQR CatBoost"
        );
        assert_eq!(
            RegionMethod::Qr(PointModel::Linear).to_string(),
            "QR Linear Regression"
        );
        assert_eq!(RegionMethod::Gp.to_string(), "GP");
    }

    #[test]
    fn table3_has_nine_rows() {
        assert_eq!(RegionMethod::ALL.len(), 9);
    }
}
