//! Plain-text table formatting matching the paper's artifacts.

use crate::degradation::RepairLog;
use crate::experiment::FeatureSetSummary;
use crate::flow::{PointEval, RegionEval};
use crate::zoo::{PointModel, RegionMethod};
use vmin_silicon::Campaign;

/// Formats a degradation [`RepairLog`] as the per-fault-class block embedded
/// in experiment reports: one line per fault class with its detection count
/// and repair action, plus the fallback note when monitor loss forced the
/// parametric-only feature set.
pub fn format_repair_log(log: &RepairLog) -> String {
    log.summary()
}

/// Formats a Fig. 2-style table: R² per (model, temperature) for one read
/// point. `results[m][t]` corresponds to `models[m]`, temperature index `t`.
///
/// # Panics
///
/// Panics if `results` shape disagrees with `models` /
/// `campaign.temperatures`.
pub fn format_point_table(
    campaign: &Campaign,
    read_point: usize,
    models: &[PointModel],
    results: &[Vec<PointEval>],
) -> String {
    assert_eq!(models.len(), results.len(), "row count mismatch");
    let mut out = String::new();
    out.push_str(&format!(
        "SCAN Vmin point prediction @ {} (R² | RMSE mV)\n",
        campaign.read_points[read_point]
    ));
    out.push_str(&format!("{:<22}", "Model"));
    for t in &campaign.temperatures {
        out.push_str(&format!("{:>22}", format!("{t}")));
    }
    out.push('\n');
    for (model, row) in models.iter().zip(results) {
        assert_eq!(
            row.len(),
            campaign.temperatures.len(),
            "column count mismatch"
        );
        out.push_str(&format!("{:<22}", model.to_string()));
        for eval in row {
            out.push_str(&format!(
                "{:>22}",
                format!("{:>6.3} | {:5.2}", eval.r2, eval.rmse)
            ));
        }
        out.push('\n');
    }
    out
}

/// Formats one read-point block of Table III: length (mV) and coverage (%)
/// per (method, temperature).
///
/// # Panics
///
/// Panics if `results` shape disagrees with `methods` / temperatures.
pub fn format_region_table(
    campaign: &Campaign,
    read_point: usize,
    methods: &[RegionMethod],
    results: &[Vec<RegionEval>],
) -> String {
    assert_eq!(methods.len(), results.len(), "row count mismatch");
    let mut out = String::new();
    out.push_str(&format!(
        "Prediction intervals for SCAN Vmin @ {} (length mV | coverage %)\n",
        campaign.read_points[read_point]
    ));
    out.push_str(&format!("{:<26}", "Method"));
    for t in &campaign.temperatures {
        out.push_str(&format!("{:>22}", format!("{t}")));
    }
    out.push('\n');
    for (method, row) in methods.iter().zip(results) {
        assert_eq!(
            row.len(),
            campaign.temperatures.len(),
            "column count mismatch"
        );
        out.push_str(&format!("{:<26}", method.to_string()));
        for eval in row {
            out.push_str(&format!(
                "{:>22}",
                format!("{:>7.2} | {:5.1}", eval.mean_length, eval.coverage * 100.0)
            ));
        }
        out.push('\n');
    }
    out
}

/// Formats the Table IV summary with the on-chip monitor gain row.
pub fn format_feature_set_table(campaign: &Campaign, rows: &[FeatureSetSummary]) -> String {
    let mut out = String::new();
    out.push_str("Avg interval length (mV) across all stress read points\n");
    out.push_str(&format!("{:<26}", "Feature type"));
    for t in &campaign.temperatures {
        out.push_str(&format!("{:>12}", format!("{t}")));
    }
    out.push_str(&format!("{:>12}\n", "Average"));
    for r in rows {
        out.push_str(&format!("{:<26}", r.feature_set.to_string()));
        for v in &r.length_per_temp {
            out.push_str(&format!("{v:>12.2}"));
        }
        out.push_str(&format!("{:>12.2}\n", r.average_length));
    }
    // Gain row (paper: "On-chip monitor gain").
    if let (Some(p), Some(b)) = (
        rows.iter()
            .find(|r| matches!(r.feature_set, crate::scenario::FeatureSet::Parametric)),
        rows.iter()
            .find(|r| matches!(r.feature_set, crate::scenario::FeatureSet::Both)),
    ) {
        out.push_str(&format!("{:<26}", "On-chip monitor gain"));
        for (pv, bv) in p.length_per_temp.iter().zip(&b.length_per_temp) {
            out.push_str(&format!("{:>11.2}%", (pv - bv) / pv * 100.0));
        }
        out.push_str(&format!(
            "{:>11.2}%\n",
            (p.average_length - b.average_length) / p.average_length * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FeatureSet;
    use vmin_silicon::{Campaign, DatasetSpec};

    fn campaign() -> Campaign {
        Campaign::run(&DatasetSpec::small(), 2)
    }

    #[test]
    fn point_table_includes_all_cells() {
        let c = campaign();
        let models = [PointModel::Linear, PointModel::CatBoost];
        let results = vec![
            vec![
                PointEval {
                    r2: 0.9,
                    rmse: 3.0,
                    n_features: 5
                };
                c.temperatures.len()
            ];
            2
        ];
        let s = format_point_table(&c, 0, &models, &results);
        assert!(s.contains("Linear Regression"));
        assert!(s.contains("CatBoost"));
        assert!(s.contains("0.900"));
        assert!(s.contains("-45.0 °C"));
    }

    #[test]
    fn region_table_formats_percentages() {
        let c = campaign();
        let methods = [RegionMethod::Gp];
        let results = vec![vec![
            RegionEval {
                mean_length: 24.5,
                coverage: 0.916
            };
            c.temperatures.len()
        ]];
        let s = format_region_table(&c, 3, &methods, &results);
        assert!(s.contains("24.50"));
        assert!(s.contains("91.6"));
        assert!(s.contains("168 h"));
    }

    #[test]
    fn feature_table_computes_gain() {
        let c = campaign();
        let rows = vec![
            FeatureSetSummary {
                feature_set: FeatureSet::Parametric,
                length_per_temp: vec![30.0, 20.0, 10.0],
                average_length: 20.0,
            },
            FeatureSetSummary {
                feature_set: FeatureSet::Both,
                length_per_temp: vec![15.0, 10.0, 5.0],
                average_length: 10.0,
            },
        ];
        let s = format_feature_set_table(&c, &rows);
        assert!(s.contains("On-chip monitor gain"));
        assert!(s.contains("50.00%"), "gain should be 50%: {s}");
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn shape_mismatch_panics() {
        let c = campaign();
        format_point_table(&c, 0, &[PointModel::Linear], &[]);
    }
}
