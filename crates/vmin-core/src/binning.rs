//! ML-assisted Vmin binning with guard bands — the application of the
//! paper's reference [4] (Lin et al., ITC 2022), built on guaranteed-
//! coverage intervals instead of point predictions.
//!
//! Chips are assigned to discrete supply-voltage bins; a chip may ship in
//! bin `V` only if its predicted Vmin interval upper bound, plus a guard
//! band, lies below `V`. Lower bins mean quadratically lower dynamic power,
//! so the binning quality metric is the average shipped supply (and the
//! fraction of chips that fall off the lowest bins).

use crate::flow::{FlowError, VminPredictor};
use vmin_data::Dataset;

/// A voltage-binning scheme: ascending bin supplies in mV.
#[derive(Debug, Clone, PartialEq)]
pub struct BinningScheme {
    bins_mv: Vec<f64>,
    guard_band_mv: f64,
}

impl BinningScheme {
    /// Builds a scheme from ascending bin voltages (mV) and a guard band.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if fewer than one bin is given,
    /// bins are not strictly ascending, or the guard band is negative.
    pub fn new(bins_mv: Vec<f64>, guard_band_mv: f64) -> Result<Self, FlowError> {
        if bins_mv.is_empty() {
            return Err(FlowError::InvalidConfig("need at least one bin".into()));
        }
        if bins_mv.windows(2).any(|w| w[1] <= w[0]) {
            return Err(FlowError::InvalidConfig(
                "bin voltages must be strictly ascending".into(),
            ));
        }
        if guard_band_mv < 0.0 {
            return Err(FlowError::InvalidConfig(
                "guard band must be non-negative".into(),
            ));
        }
        Ok(BinningScheme {
            bins_mv,
            guard_band_mv,
        })
    }

    /// The bin voltages (mV), ascending.
    pub fn bins_mv(&self) -> &[f64] {
        &self.bins_mv
    }

    /// Assigns a chip to the lowest bin whose voltage clears
    /// `upper_bound + guard_band`; `None` when even the top bin is unsafe
    /// (the chip must be rejected or measured).
    pub fn assign(&self, vmin_upper_bound_mv: f64) -> Option<usize> {
        self.bins_mv
            .iter()
            .position(|&v| vmin_upper_bound_mv + self.guard_band_mv <= v)
    }
}

/// Result of binning a population with a fitted interval predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct BinningReport {
    /// Chips per bin (same order as the scheme's bins).
    pub bin_counts: Vec<usize>,
    /// Chips no bin could safely hold.
    pub unbinnable: usize,
    /// Chips whose *true* Vmin exceeds their assigned bin voltage
    /// (bin escapes — would fail in the field at the binned supply).
    pub escapes: usize,
    /// Mean shipped supply (mV) over binned chips.
    pub mean_supply_mv: f64,
    /// Mean dynamic-power ratio vs running everyone at the top bin
    /// (`(V_bin/V_top)²` averaged over binned chips).
    pub power_ratio: f64,
}

/// Bins every chip of `population` by its predicted interval upper bound
/// and audits the assignment against the true Vmin targets.
///
/// # Errors
///
/// Propagates predictor failures.
pub fn bin_population(
    predictor: &VminPredictor,
    scheme: &BinningScheme,
    population: &Dataset,
) -> Result<BinningReport, FlowError> {
    let mut bin_counts = vec![0usize; scheme.bins_mv().len()];
    let mut unbinnable = 0usize;
    let mut escapes = 0usize;
    let mut supply_sum = 0.0;
    let mut power_sum = 0.0;
    // invariant: BinningScheme::new rejects an empty bin list.
    let Some(&v_top) = scheme.bins_mv().last() else {
        return Err(FlowError::InvalidConfig(
            "binning scheme has no bins".to_string(),
        ));
    };
    let mut binned = 0usize;
    for i in 0..population.n_samples() {
        let iv = predictor.interval(population.sample(i))?;
        match scheme.assign(iv.hi()) {
            None => unbinnable += 1,
            Some(b) => {
                bin_counts[b] += 1;
                binned += 1;
                let v = scheme.bins_mv()[b];
                supply_sum += v;
                power_sum += (v / v_top) * (v / v_top);
                if population.targets()[i] > v {
                    escapes += 1;
                }
            }
        }
    }
    let denom = binned.max(1) as f64;
    Ok(BinningReport {
        bin_counts,
        unbinnable,
        escapes,
        mean_supply_mv: supply_sum / denom,
        power_ratio: power_sum / denom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{assemble_dataset, FeatureSet};
    use crate::zoo::{ModelConfig, PointModel, RegionMethod};
    use vmin_data::train_test_split;
    use vmin_silicon::{Campaign, DatasetSpec};

    fn fitted() -> (VminPredictor, Dataset) {
        let campaign = Campaign::run(&DatasetSpec::small(), 515);
        let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
        let split = train_test_split(ds.n_samples(), 0.75, 2);
        let train = ds.subset_rows(&split.train).unwrap();
        let test = ds.subset_rows(&split.test).unwrap();
        let p = VminPredictor::fit(
            &train,
            RegionMethod::Cqr(PointModel::Linear),
            0.2,
            0.4,
            2,
            &ModelConfig::fast(),
        )
        .unwrap();
        (p, test)
    }

    #[test]
    fn scheme_validation() {
        assert!(BinningScheme::new(vec![], 5.0).is_err());
        assert!(BinningScheme::new(vec![600.0, 600.0], 5.0).is_err());
        assert!(BinningScheme::new(vec![650.0, 600.0], 5.0).is_err());
        assert!(BinningScheme::new(vec![600.0], -1.0).is_err());
        assert!(BinningScheme::new(vec![600.0, 650.0, 700.0], 5.0).is_ok());
    }

    #[test]
    fn assignment_picks_the_lowest_safe_bin() {
        let s = BinningScheme::new(vec![600.0, 650.0, 700.0], 10.0).unwrap();
        assert_eq!(s.assign(580.0), Some(0)); // 580+10 ≤ 600
        assert_eq!(s.assign(595.0), Some(1)); // needs 650
        assert_eq!(s.assign(689.0), Some(2));
        assert_eq!(s.assign(695.0), None); // 705 > 700
    }

    #[test]
    fn binning_a_population_conserves_chips() {
        let (p, test) = fitted();
        let lo = vmin_linalg::min(test.targets()) - 20.0;
        let hi = vmin_linalg::max(test.targets()) + 60.0;
        let scheme =
            BinningScheme::new(vec![lo + (hi - lo) * 0.4, lo + (hi - lo) * 0.7, hi], 2.0).unwrap();
        let report = bin_population(&p, &scheme, &test).unwrap();
        let total: usize = report.bin_counts.iter().sum::<usize>() + report.unbinnable;
        assert_eq!(total, test.n_samples());
        assert!(report.power_ratio > 0.0 && report.power_ratio <= 1.0 + 1e-12);
        assert!(report.mean_supply_mv > 0.0);
    }

    #[test]
    fn generous_top_bin_holds_everyone_without_escapes() {
        let (p, test) = fitted();
        let scheme = BinningScheme::new(vec![2000.0], 0.0).unwrap();
        let report = bin_population(&p, &scheme, &test).unwrap();
        assert_eq!(report.bin_counts[0], test.n_samples());
        assert_eq!(report.unbinnable, 0);
        assert_eq!(report.escapes, 0);
    }

    #[test]
    fn finer_bins_cut_power() {
        let (p, test) = fitted();
        let top = vmin_linalg::max(test.targets()) + 80.0;
        let coarse = BinningScheme::new(vec![top], 2.0).unwrap();
        let mid = vmin_linalg::quantile(test.targets(), 0.5).unwrap() + 40.0;
        let fine = BinningScheme::new(vec![mid, top], 2.0).unwrap();
        let r_coarse = bin_population(&p, &coarse, &test).unwrap();
        let r_fine = bin_population(&p, &fine, &test).unwrap();
        assert!(
            r_fine.power_ratio <= r_coarse.power_ratio,
            "finer binning must not cost power: {} vs {}",
            r_fine.power_ratio,
            r_coarse.power_ratio
        );
    }

    #[test]
    fn escapes_stay_bounded_by_the_guarantee() {
        let (p, test) = fitted();
        let top = vmin_linalg::max(test.targets()) + 80.0;
        let mid = vmin_linalg::quantile(test.targets(), 0.5).unwrap() + 10.0;
        let scheme = BinningScheme::new(vec![mid, top], 0.0).unwrap();
        let report = bin_population(&p, &scheme, &test).unwrap();
        // With 80% target coverage and bins keyed to the *upper* bound, the
        // escape fraction should be well under the miscoverage budget.
        let binned: usize = report.bin_counts.iter().sum();
        assert!(
            report.escapes as f64 <= 0.25 * binned.max(1) as f64,
            "too many bin escapes: {report:?}"
        );
    }
}
