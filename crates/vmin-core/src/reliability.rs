//! In-field reliability forecasting — the second future-work deployment of
//! §V: *"embed the proposed method in in-field systems to secure long-term
//! reliability and safety."*
//!
//! At each stress read point a strictly-causal predictor (time-0 parametric
//! data + monitor readings from previous read points only) produces a Vmin
//! interval. A chip raises a **degradation alarm** at the first read point
//! whose interval *upper bound* crosses the product min-spec; comparing the
//! alarm time with the true first violation yields lead time, missed
//! alarms and false alarms over a fleet.

use crate::flow::{FlowError, VminPredictor};
use crate::scenario::{assemble_dataset, FeatureSet};
use crate::zoo::{ModelConfig, RegionMethod};
use vmin_silicon::Campaign;

/// Outcome of one chip's lifetime forecast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipForecast {
    /// Chip index within the campaign.
    pub chip_id: usize,
    /// First read-point index whose *predicted upper bound* crosses the
    /// spec, if any.
    pub alarm_at: Option<usize>,
    /// First read-point index whose *measured Vmin* crosses the spec, if
    /// any (ground truth).
    pub violation_at: Option<usize>,
}

impl ChipForecast {
    /// Alarm issued at or before the true violation (the safe case).
    pub fn alarm_in_time(&self) -> bool {
        match (self.alarm_at, self.violation_at) {
            (Some(a), Some(v)) => a <= v,
            (_, None) => true, // nothing to catch
            (None, Some(_)) => false,
        }
    }

    /// Read points of warning the fleet manager gets before the failure
    /// (0 when the alarm coincides with the violation).
    pub fn lead_read_points(&self) -> Option<usize> {
        match (self.alarm_at, self.violation_at) {
            (Some(a), Some(v)) if a <= v => Some(v - a),
            _ => None,
        }
    }
}

/// Fleet-level forecast summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-chip outcomes.
    pub chips: Vec<ChipForecast>,
    /// Chips whose true Vmin violates the spec at some read point.
    pub true_failures: usize,
    /// True failures alarmed at or before the violation read point.
    pub caught_in_time: usize,
    /// Healthy chips that raised an alarm anyway.
    pub false_alarms: usize,
}

impl FleetReport {
    /// Recall over the true failures (1.0 when none exist).
    pub fn recall(&self) -> f64 {
        if self.true_failures == 0 {
            1.0
        } else {
            self.caught_in_time as f64 / self.true_failures as f64
        }
    }
}

/// Runs the in-field forecast across every read point of a campaign.
///
/// For each read point `k ≥ 1`, a predictor is trained on the `train`
/// chip indices (features per the §III-A in-field rule) and evaluated on
/// the `fleet` indices; alarms and true violations are tallied per chip.
///
/// # Errors
///
/// Propagates assembly/fit failures.
///
/// # Panics
///
/// Panics if any index exceeds the campaign population.
#[allow(clippy::too_many_arguments)] // experiment driver mirrors the protocol knobs
pub fn forecast_fleet(
    campaign: &Campaign,
    train: &[usize],
    fleet: &[usize],
    temp_idx: usize,
    method: RegionMethod,
    alpha: f64,
    min_spec_mv: f64,
    cfg: &ModelConfig,
) -> Result<FleetReport, FlowError> {
    let n_rps = campaign.read_points.len();
    let mut alarm_at: Vec<Option<usize>> = vec![None; fleet.len()];
    let mut violation_at: Vec<Option<usize>> = vec![None; fleet.len()];

    for rp in 0..n_rps {
        let ds = assemble_dataset(campaign, rp, temp_idx, FeatureSet::Both)
            .map_err(|e| FlowError::Inner(e.to_string()))?;
        let train_ds = ds.subset_rows(train)?;
        let predictor = VminPredictor::fit(&train_ds, method, alpha, 0.25, 7, cfg)?;
        for (fi, &chip) in fleet.iter().enumerate() {
            let iv = predictor.interval(ds.sample(chip))?;
            if alarm_at[fi].is_none() && iv.hi() > min_spec_mv {
                alarm_at[fi] = Some(rp);
            }
            if violation_at[fi].is_none() && ds.targets()[chip] > min_spec_mv {
                violation_at[fi] = Some(rp);
            }
        }
    }

    let chips: Vec<ChipForecast> = fleet
        .iter()
        .enumerate()
        .map(|(fi, &chip)| ChipForecast {
            chip_id: chip,
            alarm_at: alarm_at[fi],
            violation_at: violation_at[fi],
        })
        .collect();
    let true_failures = chips.iter().filter(|c| c.violation_at.is_some()).count();
    let caught_in_time = chips
        .iter()
        .filter(|c| c.violation_at.is_some() && c.alarm_in_time())
        .count();
    let false_alarms = chips
        .iter()
        .filter(|c| c.violation_at.is_none() && c.alarm_at.is_some())
        .count();
    Ok(FleetReport {
        chips,
        true_failures,
        caught_in_time,
        false_alarms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::PointModel;
    use vmin_data::train_test_split;
    use vmin_silicon::DatasetSpec;

    fn setup() -> (Campaign, Vec<usize>, Vec<usize>) {
        let campaign = Campaign::run(&DatasetSpec::small(), 606);
        let split = train_test_split(campaign.chip_count(), 0.75, 3);
        (campaign, split.train, split.test)
    }

    #[test]
    fn forecast_structures_are_consistent() {
        let (campaign, train, fleet) = setup();
        // Spec at the 80th percentile of end-of-life Vmin so some chips
        // genuinely fail during stress.
        let eol = campaign.vmin_column(5, 1);
        let spec = vmin_linalg::quantile(&eol, 0.8).unwrap();
        let report = forecast_fleet(
            &campaign,
            &train,
            &fleet,
            1,
            RegionMethod::Cqr(PointModel::Linear),
            0.2,
            spec,
            &ModelConfig::fast(),
        )
        .unwrap();
        assert_eq!(report.chips.len(), fleet.len());
        assert!(report.true_failures <= fleet.len());
        assert!(report.caught_in_time <= report.true_failures);
        assert!((0.0..=1.0).contains(&report.recall()));
    }

    #[test]
    fn alarms_catch_most_failures() {
        let (campaign, train, fleet) = setup();
        let eol = campaign.vmin_column(5, 1);
        let spec = vmin_linalg::quantile(&eol, 0.75).unwrap();
        let report = forecast_fleet(
            &campaign,
            &train,
            &fleet,
            1,
            RegionMethod::Cqr(PointModel::Linear),
            0.2,
            spec,
            &ModelConfig::fast(),
        )
        .unwrap();
        if report.true_failures > 0 {
            assert!(
                report.recall() >= 0.5,
                "interval upper bounds should catch most failures: {report:?}"
            );
        }
    }

    #[test]
    fn forecast_helpers() {
        let caught = ChipForecast {
            chip_id: 0,
            alarm_at: Some(2),
            violation_at: Some(4),
        };
        assert!(caught.alarm_in_time());
        assert_eq!(caught.lead_read_points(), Some(2));
        let missed = ChipForecast {
            chip_id: 1,
            alarm_at: None,
            violation_at: Some(3),
        };
        assert!(!missed.alarm_in_time());
        assert_eq!(missed.lead_read_points(), None);
        let healthy = ChipForecast {
            chip_id: 2,
            alarm_at: None,
            violation_at: None,
        };
        assert!(healthy.alarm_in_time());
    }

    #[test]
    fn zero_failures_gives_full_recall() {
        let r = FleetReport {
            chips: vec![],
            true_failures: 0,
            caught_in_time: 0,
            false_alarms: 0,
        };
        assert_eq!(r.recall(), 1.0);
    }
}
