//! Fold-level fitting/evaluation and the user-facing [`VminPredictor`].

use crate::degradation::{sanitize_campaign, DegradationError, DegradationPolicy, RepairLog};
use crate::scenario::FeatureSet;
use crate::zoo::{ModelConfig, PointModel, RegionMethod};
use std::error::Error;
use std::fmt;
use vmin_conformal::{evaluate_intervals, Cqr, PredictionInterval};
use vmin_data::{cfs_select, r_squared, rmse, train_test_split, Dataset, Standardizer};
use vmin_models::{GaussianProcess, Regressor};
use vmin_silicon::Campaign;

/// Error from the prediction flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A wrapped model / conformal / dataset failure.
    Inner(String),
    /// The configuration is inconsistent (e.g. α outside (0, 1)).
    InvalidConfig(String),
    /// The degradation pipeline rejected dirty data or failed to repair it.
    Degradation(DegradationError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Inner(m) => write!(f, "pipeline failure: {m}"),
            FlowError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            FlowError::Degradation(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FlowError {}

impl From<DegradationError> for FlowError {
    fn from(e: DegradationError) -> Self {
        FlowError::Degradation(e)
    }
}

impl From<vmin_models::ModelError> for FlowError {
    fn from(e: vmin_models::ModelError) -> Self {
        FlowError::Inner(e.to_string())
    }
}

impl From<vmin_conformal::ConformalError> for FlowError {
    fn from(e: vmin_conformal::ConformalError) -> Self {
        FlowError::Inner(e.to_string())
    }
}

impl From<vmin_data::DatasetError> for FlowError {
    fn from(e: vmin_data::DatasetError) -> Self {
        FlowError::Inner(e.to_string())
    }
}

/// Point-prediction quality on one test fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEval {
    /// Coefficient of determination on the test fold.
    pub r2: f64,
    /// Root-mean-square error (same units as the target, mV).
    pub rmse: f64,
    /// Number of CFS-selected features (0 = all features used).
    pub n_features: usize,
}

/// Region-prediction quality on one test fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionEval {
    /// Mean interval length (mV).
    pub mean_length: f64,
    /// Fraction of test targets covered.
    pub coverage: f64,
}

/// Maximum number of CFS features the paper sweeps (1..=10).
pub const CFS_MAX_FEATURES: usize = 10;

/// Candidate pool size for CFS pre-filtering on wide feature sets.
pub const CFS_POOL: usize = 60;

/// Fits `model` on `train` and evaluates on `test`, following §IV-C: models
/// flagged [`PointModel::uses_cfs`] get a CFS sweep over 1..=10 features
/// with the best *test* score reported (the paper's protocol); tree
/// ensembles consume all raw features.
///
/// # Errors
///
/// Propagates model and dataset failures as [`FlowError::Inner`].
pub fn eval_point_fold(
    model: PointModel,
    cfg: &ModelConfig,
    train: &Dataset,
    test: &Dataset,
) -> Result<PointEval, FlowError> {
    if model.uses_cfs() {
        let scaler = Standardizer::fit(train.features());
        let train_z = scaler.transform_dataset(train)?;
        let test_z = scaler.transform_dataset(test)?;
        let selection = cfs_select(
            train_z.features(),
            train_z.targets(),
            CFS_MAX_FEATURES,
            CFS_POOL,
        );
        let mut best: Option<PointEval> = None;
        for k in 1..=selection.selected.len() {
            let idx = &selection.selected[..k];
            let tr = train_z.subset_columns(idx)?;
            let te = test_z.subset_columns(idx)?;
            let mut m = model.make_point(cfg);
            m.fit(tr.features(), tr.targets())?;
            let pred = m.predict(te.features())?;
            let eval = PointEval {
                r2: r_squared(te.targets(), &pred),
                rmse: rmse(te.targets(), &pred),
                n_features: k,
            };
            if best.is_none_or(|b| eval.r2 > b.r2) {
                best = Some(eval);
            }
        }
        best.ok_or_else(|| FlowError::Inner("CFS selected no features".into()))
    } else {
        let mut m = model.make_point(cfg);
        m.fit(train.features(), train.targets())?;
        let pred = m.predict(test.features())?;
        Ok(PointEval {
            r2: r_squared(test.targets(), &pred),
            rmse: rmse(test.targets(), &pred),
            n_features: 0,
        })
    }
}

/// Selects the working feature view for a region method: CFS-10 columns for
/// CFS models, all columns otherwise. Returns (train, test) with
/// standardized features for CFS models (raw otherwise, matching how the
/// tree ensembles are fed).
fn region_feature_view(
    method: RegionMethod,
    train: &Dataset,
    test: &Dataset,
) -> Result<(Dataset, Dataset), FlowError> {
    if method.uses_cfs() {
        let scaler = Standardizer::fit(train.features());
        let train_z = scaler.transform_dataset(train)?;
        let test_z = scaler.transform_dataset(test)?;
        let selection = cfs_select(
            train_z.features(),
            train_z.targets(),
            CFS_MAX_FEATURES,
            CFS_POOL,
        );
        Ok((
            train_z.subset_columns(&selection.selected)?,
            test_z.subset_columns(&selection.selected)?,
        ))
    } else {
        Ok((train.clone(), test.clone()))
    }
}

/// Fits a region predictor on `train` and evaluates interval length and
/// coverage on `test` (§IV-E/F):
///
/// - `Gp`: Gaussian interval at miscoverage `alpha` (Eq. 4).
/// - `Qr(m)`: raw quantile band from the (α/2, 1−α/2) pair — no guarantee.
/// - `Cqr(m)`: the pair is trained on 75% of `train`, calibrated on the
///   remaining 25% (`cal_fraction = 0.25`), intervals per Eq. 10.
///
/// `seed` drives the train/calibration split so all methods share it.
///
/// # Errors
///
/// Propagates failures as [`FlowError`].
pub fn eval_region_fold(
    method: RegionMethod,
    cfg: &ModelConfig,
    train: &Dataset,
    test: &Dataset,
    alpha: f64,
    cal_fraction: f64,
    seed: u64,
) -> Result<RegionEval, FlowError> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(FlowError::InvalidConfig(format!(
            "alpha must be in (0, 1), got {alpha}"
        )));
    }
    let (train_v, test_v) = region_feature_view(method, train, test)?;
    let intervals: Vec<PredictionInterval> = match method {
        RegionMethod::Gp => {
            // Region prediction keeps the noise-fitted GP: Eq. 4's Gaussian
            // interval is only meaningful with an observation-noise model
            // (the near-interpolating paper-default GP would degenerate to
            // zero-width bands). Its coverage still misses the nominal level
            // where residuals are heavy-tailed — the paper's Table III GP
            // behaviour.
            let mut gp = GaussianProcess::new();
            gp.fit(train_v.features(), train_v.targets())?;
            (0..test_v.n_samples())
                .map(|i| {
                    gp.predict_interval(test_v.sample(i), alpha)
                        .map(|(lo, hi)| PredictionInterval::new(lo, hi))
                })
                .collect::<Result<_, _>>()?
        }
        RegionMethod::Qr(base) => {
            let mut lo = base
                .make_quantile(alpha / 2.0, cfg)
                .ok_or_else(|| FlowError::InvalidConfig(format!("{base} has no quantile form")))?;
            let mut hi = base
                .make_quantile(1.0 - alpha / 2.0, cfg)
                .ok_or_else(|| FlowError::InvalidConfig(format!("{base} has no quantile form")))?;
            let (lo_res, hi_res) = vmin_par::join(
                || lo.fit(train_v.features(), train_v.targets()),
                || hi.fit(train_v.features(), train_v.targets()),
            );
            lo_res?;
            hi_res?;
            (0..test_v.n_samples())
                .map(|i| {
                    let l = lo.predict_row(test_v.sample(i))?;
                    let h = hi.predict_row(test_v.sample(i))?;
                    Ok::<_, vmin_models::ModelError>(PredictionInterval::new(l, h))
                })
                .collect::<Result<_, _>>()?
        }
        RegionMethod::Cqr(base) => {
            if !(cal_fraction > 0.0 && cal_fraction < 1.0) {
                return Err(FlowError::InvalidConfig(format!(
                    "cal_fraction must be in (0, 1), got {cal_fraction}"
                )));
            }
            let split = train_test_split(train_v.n_samples(), 1.0 - cal_fraction, seed);
            let proper = train_v.subset_rows(&split.train)?;
            let cal = train_v.subset_rows(&split.test)?;
            let lo = base
                .make_quantile(alpha / 2.0, cfg)
                .ok_or_else(|| FlowError::InvalidConfig(format!("{base} has no quantile form")))?;
            let hi = base
                .make_quantile(1.0 - alpha / 2.0, cfg)
                .ok_or_else(|| FlowError::InvalidConfig(format!("{base} has no quantile form")))?;
            let mut cqr = Cqr::new(lo, hi, alpha);
            cqr.fit_calibrate(
                proper.features(),
                proper.targets(),
                cal.features(),
                cal.targets(),
            )?;
            cqr.predict_intervals(test_v.features())?
        }
    };
    let report = evaluate_intervals(&intervals, test_v.targets());
    Ok(RegionEval {
        mean_length: report.mean_length,
        coverage: report.coverage,
    })
}

/// A fitted, user-facing Vmin interval predictor — the deployable artifact
/// the paper envisions embedding in production test flows and in-field
/// systems (§V).
///
/// # Examples
///
/// ```
/// use vmin_core::{assemble_dataset, FeatureSet, ModelConfig, PointModel,
///                 RegionMethod, VminPredictor};
/// use vmin_silicon::{Campaign, DatasetSpec};
///
/// let campaign = Campaign::run(&DatasetSpec::small(), 9);
/// let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both)?;
/// let predictor = VminPredictor::fit(
///     &ds,
///     RegionMethod::Cqr(PointModel::CatBoost),
///     0.1,
///     0.25,
///     42,
///     &ModelConfig::fast(),
/// )?;
/// let interval = predictor.interval(ds.sample(0))?;
/// assert!(interval.length() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct VminPredictor {
    method: RegionMethod,
    alpha: f64,
    /// Column indices into the original feature space (empty = all).
    selected: Vec<usize>,
    scaler: Option<Standardizer>,
    fitted: FittedRegion,
}

#[derive(Debug)]
enum FittedRegion {
    Gp(GaussianProcess),
    Qr {
        lo: Box<dyn Regressor>,
        hi: Box<dyn Regressor>,
    },
    Cqr(Cqr<Box<dyn Regressor>, Box<dyn Regressor>>),
}

impl VminPredictor {
    /// Fits a region predictor on a full training dataset.
    ///
    /// For CFS-using methods the features are standardized and reduced to
    /// the CFS selection; the predictor remembers both so raw feature rows
    /// can be passed to [`Self::interval`].
    ///
    /// # Errors
    ///
    /// Propagates configuration and model failures as [`FlowError`].
    pub fn fit(
        dataset: &Dataset,
        method: RegionMethod,
        alpha: f64,
        cal_fraction: f64,
        seed: u64,
        cfg: &ModelConfig,
    ) -> Result<Self, FlowError> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(FlowError::InvalidConfig(format!(
                "alpha must be in (0, 1), got {alpha}"
            )));
        }
        let (work, selected, scaler) = if method.uses_cfs() {
            let scaler = Standardizer::fit(dataset.features());
            let z = scaler.transform_dataset(dataset)?;
            let sel = cfs_select(z.features(), z.targets(), CFS_MAX_FEATURES, CFS_POOL);
            (z.subset_columns(&sel.selected)?, sel.selected, Some(scaler))
        } else {
            (dataset.clone(), Vec::new(), None)
        };

        let fitted = match method {
            RegionMethod::Gp => {
                let mut gp = GaussianProcess::new();
                gp.fit(work.features(), work.targets())?;
                FittedRegion::Gp(gp)
            }
            RegionMethod::Qr(base) => {
                let mut lo = base.make_quantile(alpha / 2.0, cfg).ok_or_else(|| {
                    FlowError::InvalidConfig(format!("{base} has no quantile form"))
                })?;
                let mut hi = base.make_quantile(1.0 - alpha / 2.0, cfg).ok_or_else(|| {
                    FlowError::InvalidConfig(format!("{base} has no quantile form"))
                })?;
                let (lo_res, hi_res) = vmin_par::join(
                    || lo.fit(work.features(), work.targets()),
                    || hi.fit(work.features(), work.targets()),
                );
                lo_res?;
                hi_res?;
                FittedRegion::Qr { lo, hi }
            }
            RegionMethod::Cqr(base) => {
                if !(cal_fraction > 0.0 && cal_fraction < 1.0) {
                    return Err(FlowError::InvalidConfig(format!(
                        "cal_fraction must be in (0, 1), got {cal_fraction}"
                    )));
                }
                let split = train_test_split(work.n_samples(), 1.0 - cal_fraction, seed);
                let proper = work.subset_rows(&split.train)?;
                let cal = work.subset_rows(&split.test)?;
                let lo = base.make_quantile(alpha / 2.0, cfg).ok_or_else(|| {
                    FlowError::InvalidConfig(format!("{base} has no quantile form"))
                })?;
                let hi = base.make_quantile(1.0 - alpha / 2.0, cfg).ok_or_else(|| {
                    FlowError::InvalidConfig(format!("{base} has no quantile form"))
                })?;
                let mut cqr = Cqr::new(lo, hi, alpha);
                cqr.fit_calibrate(
                    proper.features(),
                    proper.targets(),
                    cal.features(),
                    cal.targets(),
                )?;
                FittedRegion::Cqr(cqr)
            }
        };
        Ok(VminPredictor {
            method,
            alpha,
            selected,
            scaler,
            fitted,
        })
    }

    /// The region method in use.
    pub fn method(&self) -> RegionMethod {
        self.method
    }

    /// The target miscoverage α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Maps a raw feature row to the model's working view.
    fn project(&self, row: &[f64]) -> Result<Vec<f64>, FlowError> {
        match &self.scaler {
            Some(scaler) => {
                let z = scaler.transform_row(row)?;
                Ok(self.selected.iter().map(|&j| z[j]).collect())
            }
            None => Ok(row.to_vec()),
        }
    }

    /// Predicts the Vmin interval (mV) for a raw feature row.
    ///
    /// # Errors
    ///
    /// [`FlowError::Inner`] on dimension mismatch or model failure.
    pub fn interval(&self, row: &[f64]) -> Result<PredictionInterval, FlowError> {
        let z = self.project(row)?;
        Ok(match &self.fitted {
            FittedRegion::Gp(gp) => {
                let (lo, hi) = gp.predict_interval(&z, self.alpha)?;
                PredictionInterval::new(lo, hi)
            }
            FittedRegion::Qr { lo, hi } => {
                PredictionInterval::new(lo.predict_row(&z)?, hi.predict_row(&z)?)
            }
            FittedRegion::Cqr(cqr) => cqr.predict_interval(&z)?,
        })
    }

    /// True when the interval's upper bound crosses the product min-spec —
    /// the screening decision of Fig. 1 (a chip whose interval extends above
    /// min-spec cannot be guaranteed to meet specification).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::interval`].
    pub fn flags_spec_risk(&self, row: &[f64], min_spec_mv: f64) -> Result<bool, FlowError> {
        Ok(self.interval(row)?.hi() > min_spec_mv)
    }

    /// Sanitizes a (possibly dirty) campaign under `policy` and fits a
    /// predictor on the repaired dataset. Feature rows passed to
    /// [`Self::interval`] afterwards must come from the returned
    /// [`SanitizedFit::dataset`] (repairs may drop columns).
    ///
    /// When monitor loss forced the parametric-only fallback, the log's
    /// `fallback_length_cost_mv` is filled with the mean interval-length
    /// cost relative to a fit that keeps the surviving monitors — the
    /// pipeline's live mirror of the paper's Table IV feature-set trade.
    ///
    /// # Errors
    ///
    /// [`FlowError::Degradation`] when the policy rejects or cannot repair
    /// the data (notably [`DegradationError::DirtyDataRejected`] in strict
    /// mode); otherwise the same conditions as [`Self::fit`].
    #[allow(clippy::too_many_arguments)] // mirrors `fit` plus the scenario coordinates
    pub fn fit_sanitized(
        campaign: &Campaign,
        read_point: usize,
        temp_idx: usize,
        feature_set: FeatureSet,
        policy: &DegradationPolicy,
        method: RegionMethod,
        alpha: f64,
        cal_fraction: f64,
        seed: u64,
        cfg: &ModelConfig,
    ) -> Result<SanitizedFit, FlowError> {
        let (dataset, mut log) =
            sanitize_campaign(campaign, read_point, temp_idx, feature_set, policy)?;
        let predictor = VminPredictor::fit(&dataset, method, alpha, cal_fraction, seed, cfg)?;
        if log.monitor_fallback {
            log.fallback_length_cost_mv = fallback_length_cost(
                campaign,
                read_point,
                temp_idx,
                feature_set,
                policy,
                method,
                alpha,
                cal_fraction,
                seed,
                cfg,
                &predictor,
                &dataset,
            );
        }
        Ok(SanitizedFit {
            predictor,
            dataset,
            log,
        })
    }
}

/// A predictor fitted through the degradation pipeline, together with the
/// repaired dataset it was fitted on and the structured repair log.
#[derive(Debug)]
pub struct SanitizedFit {
    /// The fitted predictor (over the repaired feature space).
    pub predictor: VminPredictor,
    /// The repaired dataset; its rows are valid inputs to
    /// [`VminPredictor::interval`].
    pub dataset: Dataset,
    /// What the degradation pipeline detected and repaired.
    pub log: RepairLog,
}

/// Mean interval length of `p` over the rows of `ds`, or `None` on any
/// prediction failure.
fn mean_interval_length_over(p: &VminPredictor, ds: &Dataset) -> Option<f64> {
    if ds.n_samples() == 0 {
        return None;
    }
    let mut sum = 0.0;
    for i in 0..ds.n_samples() {
        sum += p.interval(ds.sample(i)).ok()?.length();
    }
    Some(sum / ds.n_samples() as f64)
}

/// Interval-length cost (mV) of the parametric-only fallback: refits with
/// the fallback disabled (keeping whatever monitor columns survived) and
/// compares mean interval lengths. Positive = the fallback costs interval
/// sharpness, mirroring Table IV. `None` when no comparison fit is possible
/// (e.g. the whole monitor bank is dead).
#[allow(clippy::too_many_arguments)]
fn fallback_length_cost(
    campaign: &Campaign,
    read_point: usize,
    temp_idx: usize,
    feature_set: FeatureSet,
    policy: &DegradationPolicy,
    method: RegionMethod,
    alpha: f64,
    cal_fraction: f64,
    seed: u64,
    cfg: &ModelConfig,
    fallback: &VminPredictor,
    fallback_ds: &Dataset,
) -> Option<f64> {
    let keep_monitors = DegradationPolicy {
        monitor_fallback_threshold: f64::INFINITY,
        ..policy.clone()
    };
    let (full_ds, _) =
        sanitize_campaign(campaign, read_point, temp_idx, feature_set, &keep_monitors).ok()?;
    if full_ds.n_features() <= fallback_ds.n_features() {
        return None; // no monitor column survived; nothing to compare against
    }
    let full = VminPredictor::fit(&full_ds, method, alpha, cal_fraction, seed, cfg).ok()?;
    let fb_len = mean_interval_length_over(fallback, fallback_ds)?;
    let full_len = mean_interval_length_over(&full, &full_ds)?;
    Some(fb_len - full_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{assemble_dataset, FeatureSet};
    use vmin_data::KFold;
    use vmin_silicon::{Campaign, DatasetSpec};

    fn small_dataset() -> Dataset {
        let campaign = Campaign::run(&DatasetSpec::small(), 5);
        assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap()
    }

    #[test]
    fn point_fold_linear_beats_mean_baseline() {
        let ds = small_dataset();
        let kf = KFold::new(ds.n_samples(), 4, 7);
        let split = kf.split(0);
        let train = ds.subset_rows(&split.train).unwrap();
        let test = ds.subset_rows(&split.test).unwrap();
        let eval =
            eval_point_fold(PointModel::Linear, &ModelConfig::fast(), &train, &test).unwrap();
        assert!(
            eval.r2 > 0.0,
            "LR should beat the mean baseline, R²={}",
            eval.r2
        );
        assert!(eval.n_features >= 1 && eval.n_features <= 10);
        assert!(eval.rmse > 0.0);
    }

    #[test]
    fn region_fold_cqr_linear_produces_sane_intervals() {
        let ds = small_dataset();
        let kf = KFold::new(ds.n_samples(), 4, 7);
        let split = kf.split(1);
        let train = ds.subset_rows(&split.train).unwrap();
        let test = ds.subset_rows(&split.test).unwrap();
        let eval = eval_region_fold(
            RegionMethod::Cqr(PointModel::Linear),
            &ModelConfig::fast(),
            &train,
            &test,
            0.2,
            0.4,
            42,
        )
        .unwrap();
        assert!(eval.mean_length > 0.0);
        assert!(eval.coverage >= 0.0 && eval.coverage <= 1.0);
    }

    #[test]
    fn gp_region_fold_works() {
        let ds = small_dataset();
        let kf = KFold::new(ds.n_samples(), 4, 7);
        let split = kf.split(2);
        let train = ds.subset_rows(&split.train).unwrap();
        let test = ds.subset_rows(&split.test).unwrap();
        let eval = eval_region_fold(
            RegionMethod::Gp,
            &ModelConfig::fast(),
            &train,
            &test,
            0.1,
            0.25,
            42,
        )
        .unwrap();
        assert!(eval.mean_length.is_finite());
    }

    #[test]
    fn invalid_configs_rejected() {
        let ds = small_dataset();
        let kf = KFold::new(ds.n_samples(), 2, 1);
        let split = kf.split(0);
        let train = ds.subset_rows(&split.train).unwrap();
        let test = ds.subset_rows(&split.test).unwrap();
        let bad_alpha = eval_region_fold(
            RegionMethod::Gp,
            &ModelConfig::fast(),
            &train,
            &test,
            0.0,
            0.25,
            1,
        );
        assert!(matches!(bad_alpha, Err(FlowError::InvalidConfig(_))));
        let bad_cal = eval_region_fold(
            RegionMethod::Cqr(PointModel::Linear),
            &ModelConfig::fast(),
            &train,
            &test,
            0.1,
            0.0,
            1,
        );
        assert!(matches!(bad_cal, Err(FlowError::InvalidConfig(_))));
    }

    #[test]
    fn predictor_end_to_end() {
        let ds = small_dataset();
        let pred = VminPredictor::fit(
            &ds,
            RegionMethod::Cqr(PointModel::Linear),
            0.2,
            0.4,
            3,
            &ModelConfig::fast(),
        )
        .unwrap();
        assert_eq!(pred.alpha(), 0.2);
        let iv = pred.interval(ds.sample(0)).unwrap();
        assert!(iv.length() > 0.0 && iv.lo().is_finite());
        // Spec risk flag is monotone in the threshold.
        assert!(pred.flags_spec_risk(ds.sample(0), iv.hi() - 1.0).unwrap());
        assert!(!pred.flags_spec_risk(ds.sample(0), iv.hi() + 1.0).unwrap());
    }

    #[test]
    fn predictor_covers_most_training_chips() {
        let ds = small_dataset();
        let pred = VminPredictor::fit(
            &ds,
            RegionMethod::Cqr(PointModel::Linear),
            0.2,
            0.4,
            3,
            &ModelConfig::fast(),
        )
        .unwrap();
        let covered = (0..ds.n_samples())
            .filter(|&i| {
                pred.interval(ds.sample(i))
                    .unwrap()
                    .contains(ds.targets()[i])
            })
            .count();
        assert!(
            covered as f64 / ds.n_samples() as f64 > 0.6,
            "in-sample coverage too low: {covered}/{}",
            ds.n_samples()
        );
    }
}
