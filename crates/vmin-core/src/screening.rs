//! Production-test acceleration via interval-gated screening — the first
//! future-work deployment of §V: *"embed the proposed method in the
//! production test flow to accelerate the Vmin test and enhance the yield
//! while screening out outliers."*
//!
//! For each incoming chip the fitted interval predictor classifies:
//!
//! - **PredictPass**: interval upper bound below `min_spec − guard_band` →
//!   ship without measuring Vmin (saves the whole shmoo).
//! - **PredictFail**: interval lower bound above `min_spec` → reject
//!   without measuring.
//! - **Measure**: interval straddles the spec → fall back to the
//!   conventional shmoo measurement.
//!
//! Because the interval carries a `1 − α` coverage guarantee, the escape
//! rate (shipped chips whose true Vmin violates spec) is bounded by the
//! miscoverage budget spent on the PredictPass bucket.

use crate::flow::{FlowError, VminPredictor};
use std::fmt;
use vmin_data::Dataset;

/// The screening decision for one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreeningDecision {
    /// Ship without measurement: upper bound clears spec minus guard band.
    PredictPass,
    /// Reject without measurement: lower bound violates spec.
    PredictFail,
    /// Interval straddles the spec: measure conventionally.
    Measure,
}

impl fmt::Display for ScreeningDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScreeningDecision::PredictPass => "predict-pass",
            ScreeningDecision::PredictFail => "predict-fail",
            ScreeningDecision::Measure => "measure",
        };
        f.write_str(s)
    }
}

/// Interval-gated adaptive test policy.
#[derive(Debug)]
pub struct ScreeningPolicy<'a> {
    predictor: &'a VminPredictor,
    /// Product min-spec (mV): chips with Vmin above this violate spec.
    min_spec_mv: f64,
    /// Extra margin (mV) required below spec before skipping measurement.
    guard_band_mv: f64,
}

impl<'a> ScreeningPolicy<'a> {
    /// Builds a policy around a fitted predictor.
    pub fn new(predictor: &'a VminPredictor, min_spec_mv: f64, guard_band_mv: f64) -> Self {
        ScreeningPolicy {
            predictor,
            min_spec_mv,
            guard_band_mv,
        }
    }

    /// The product min-spec (mV).
    pub fn min_spec_mv(&self) -> f64 {
        self.min_spec_mv
    }

    /// Decision for one chip's feature row.
    ///
    /// # Errors
    ///
    /// Propagates predictor failures.
    pub fn decide(&self, row: &[f64]) -> Result<ScreeningDecision, FlowError> {
        let iv = self.predictor.interval(row)?;
        if iv.hi() < self.min_spec_mv - self.guard_band_mv {
            Ok(ScreeningDecision::PredictPass)
        } else if iv.lo() > self.min_spec_mv {
            Ok(ScreeningDecision::PredictFail)
        } else {
            Ok(ScreeningDecision::Measure)
        }
    }
}

/// Outcome of simulating the adaptive flow over a chip population.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningReport {
    /// Chips shipped on prediction alone.
    pub predicted_pass: usize,
    /// Chips rejected on prediction alone.
    pub predicted_fail: usize,
    /// Chips routed to conventional measurement.
    pub measured: usize,
    /// Shipped-without-measurement chips whose true Vmin violates spec
    /// (test escapes — bounded by the coverage guarantee).
    pub escapes: usize,
    /// Rejected-without-measurement chips whose true Vmin actually meets
    /// spec (overkill).
    pub overkill: usize,
    /// Fraction of shmoo measurements avoided.
    pub measurement_savings: f64,
}

impl ScreeningReport {
    /// Escape rate over the shipped-without-measurement population
    /// (0 when nothing was auto-shipped).
    pub fn escape_rate(&self) -> f64 {
        if self.predicted_pass == 0 {
            0.0
        } else {
            self.escapes as f64 / self.predicted_pass as f64
        }
    }
}

/// Simulates the adaptive flow on a labelled dataset (features + true Vmin
/// in mV) and tallies savings, escapes and overkill.
///
/// # Errors
///
/// Propagates predictor failures.
pub fn simulate_screening(
    policy: &ScreeningPolicy<'_>,
    chips: &Dataset,
) -> Result<ScreeningReport, FlowError> {
    let mut report = ScreeningReport {
        predicted_pass: 0,
        predicted_fail: 0,
        measured: 0,
        escapes: 0,
        overkill: 0,
        measurement_savings: 0.0,
    };
    for i in 0..chips.n_samples() {
        let truth_violates = chips.targets()[i] > policy.min_spec_mv();
        match policy.decide(chips.sample(i))? {
            ScreeningDecision::PredictPass => {
                report.predicted_pass += 1;
                report.escapes += usize::from(truth_violates);
            }
            ScreeningDecision::PredictFail => {
                report.predicted_fail += 1;
                report.overkill += usize::from(!truth_violates);
            }
            ScreeningDecision::Measure => report.measured += 1,
        }
    }
    let n = chips.n_samples().max(1);
    report.measurement_savings = (report.predicted_pass + report.predicted_fail) as f64 / n as f64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{assemble_dataset, FeatureSet};
    use crate::zoo::{ModelConfig, PointModel, RegionMethod};
    use vmin_data::train_test_split;
    use vmin_silicon::{Campaign, DatasetSpec};

    fn setup() -> (Dataset, Dataset) {
        let campaign = Campaign::run(&DatasetSpec::small(), 808);
        let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
        let split = train_test_split(ds.n_samples(), 0.75, 5);
        (
            ds.subset_rows(&split.train).unwrap(),
            ds.subset_rows(&split.test).unwrap(),
        )
    }

    fn predictor(train: &Dataset) -> VminPredictor {
        VminPredictor::fit(
            train,
            RegionMethod::Cqr(PointModel::Linear),
            0.2,
            0.4,
            9,
            &ModelConfig::fast(),
        )
        .unwrap()
    }

    #[test]
    fn generous_spec_ships_everything() {
        let (train, test) = setup();
        let p = predictor(&train);
        // Spec far above the population: every interval clears it.
        let policy = ScreeningPolicy::new(&p, 10_000.0, 5.0);
        let rep = simulate_screening(&policy, &test).unwrap();
        assert_eq!(rep.predicted_pass, test.n_samples());
        assert_eq!(rep.escapes, 0);
        assert!((rep.measurement_savings - 1.0).abs() < 1e-12);
        assert_eq!(rep.escape_rate(), 0.0);
    }

    #[test]
    fn impossible_spec_rejects_everything() {
        let (train, test) = setup();
        let p = predictor(&train);
        let policy = ScreeningPolicy::new(&p, 0.0, 5.0);
        let rep = simulate_screening(&policy, &test).unwrap();
        assert_eq!(rep.predicted_fail, test.n_samples());
        // Everything truly violates a 0 mV spec, so no overkill.
        assert_eq!(rep.overkill, 0);
    }

    #[test]
    fn mid_population_spec_routes_ambiguous_chips_to_measurement() {
        let (train, test) = setup();
        let p = predictor(&train);
        // Spec at the training median: intervals straddle it for most chips.
        let spec = vmin_linalg::quantile(train.targets(), 0.5).unwrap();
        let policy = ScreeningPolicy::new(&p, spec, 2.0);
        let rep = simulate_screening(&policy, &test).unwrap();
        assert!(
            rep.measured > 0,
            "ambiguous chips must be measured: {rep:?}"
        );
        assert_eq!(
            rep.predicted_pass + rep.predicted_fail + rep.measured,
            test.n_samples()
        );
    }

    #[test]
    fn guard_band_monotonically_reduces_auto_ship() {
        let (train, test) = setup();
        let p = predictor(&train);
        let spec = vmin_linalg::quantile(train.targets(), 0.95).unwrap();
        let ship_with = |guard: f64| {
            let policy = ScreeningPolicy::new(&p, spec, guard);
            simulate_screening(&policy, &test).unwrap().predicted_pass
        };
        assert!(ship_with(0.0) >= ship_with(10.0));
        assert!(ship_with(10.0) >= ship_with(40.0));
    }

    #[test]
    fn escape_rate_is_small_under_the_guarantee() {
        // Spec in the upper tail so a meaningful fraction auto-ships, then
        // check escapes stay bounded (coverage guarantee + guard band).
        let (train, test) = setup();
        let p = predictor(&train);
        let spec = vmin_linalg::quantile(train.targets(), 0.9).unwrap();
        let policy = ScreeningPolicy::new(&p, spec, 2.0);
        let rep = simulate_screening(&policy, &test).unwrap();
        assert!(
            rep.escape_rate() <= 0.25,
            "escape rate {} too high: {rep:?}",
            rep.escape_rate()
        );
    }

    #[test]
    fn decision_display() {
        assert_eq!(ScreeningDecision::PredictPass.to_string(), "predict-pass");
        assert_eq!(ScreeningDecision::Measure.to_string(), "measure");
    }
}
