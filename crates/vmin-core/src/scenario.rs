//! Feature assembly for the two prediction scenarios of §III-A / §IV-B.
//!
//! - **Time 0** (production test): parametric data and on-chip monitor data,
//!   both collected at time 0, predict time-0 Vmin.
//! - **In-field degradation** (read point `k > 0`): parametric data from
//!   time 0 (parametric tests are impossible once chips ship) plus on-chip
//!   monitor data from all *previous* read points predict Vmin at read
//!   point `k`.
//!
//! The assembled feature set can be restricted to parametric-only or
//! on-chip-only to reproduce the Table IV / Fig. 3 comparison.

use std::error::Error;
use std::fmt;
use vmin_data::Dataset;
use vmin_linalg::Matrix;
use vmin_silicon::Campaign;

/// Which feature families enter the model (Fig. 3 / Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// Parametric ATE tests only (time 0).
    Parametric,
    /// On-chip monitors only (ROD + CPD).
    OnChip,
    /// Both families — the paper's main configuration.
    Both,
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FeatureSet::Parametric => "Parametric",
            FeatureSet::OnChip => "On-chip",
            FeatureSet::Both => "On-chip and Parametric",
        };
        f.write_str(s)
    }
}

/// Error from feature assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Read point or temperature index out of range for the campaign.
    IndexOutOfRange(String),
    /// Internal shape inconsistency (should not occur on well-formed
    /// campaigns).
    Shape(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::IndexOutOfRange(m) => write!(f, "index out of range: {m}"),
            ScenarioError::Shape(m) => write!(f, "shape inconsistency: {m}"),
        }
    }
}

impl Error for ScenarioError {}

/// Which monitor read points feed the prediction of Vmin at `read_point`.
///
/// Time 0 uses the monitors collected at time 0 itself (everything is
/// measured in the same production-test insertion); later read points use
/// strictly previous monitor data so the prediction is a genuine *forecast*
/// of in-field degradation.
pub fn monitor_read_points(read_point: usize) -> Vec<usize> {
    if read_point == 0 {
        vec![0]
    } else {
        (0..read_point).collect()
    }
}

/// Builds the supervised dataset for predicting SCAN Vmin at
/// `(read_point, temp_idx)` from the campaign's measurements.
///
/// # Errors
///
/// Returns [`ScenarioError::IndexOutOfRange`] for invalid indices, and
/// [`ScenarioError::Shape`] if the campaign data is internally inconsistent.
///
/// # Examples
///
/// ```
/// use vmin_core::{assemble_dataset, FeatureSet};
/// use vmin_silicon::{Campaign, DatasetSpec};
///
/// let campaign = Campaign::run(&DatasetSpec::small(), 1);
/// let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both)?;
/// assert_eq!(ds.n_samples(), campaign.chip_count());
/// # Ok::<(), vmin_core::ScenarioError>(())
/// ```
pub fn assemble_dataset(
    campaign: &Campaign,
    read_point: usize,
    temp_idx: usize,
    feature_set: FeatureSet,
) -> Result<Dataset, ScenarioError> {
    if read_point >= campaign.read_points.len() {
        return Err(ScenarioError::IndexOutOfRange(format!(
            "read point {read_point} (campaign has {})",
            campaign.read_points.len()
        )));
    }
    if temp_idx >= campaign.temperatures.len() {
        return Err(ScenarioError::IndexOutOfRange(format!(
            "temperature index {temp_idx} (campaign has {})",
            campaign.temperatures.len()
        )));
    }

    let monitor_points = monitor_read_points(read_point);
    let use_parametric = matches!(feature_set, FeatureSet::Parametric | FeatureSet::Both);
    let use_onchip = matches!(feature_set, FeatureSet::OnChip | FeatureSet::Both);

    let mut names: Vec<String> = Vec::new();
    if use_parametric {
        names.extend(campaign.parametric_names.iter().cloned());
    }
    if use_onchip {
        for &k in &monitor_points {
            names.extend(campaign.rod_names(k));
            names.extend(campaign.cpd_names(k));
        }
    }

    let n = campaign.chip_count();
    let d = names.len();
    let mut features = Matrix::zeros(n, d);
    let mut targets = Vec::with_capacity(n);
    for (i, chip) in campaign.chips.iter().enumerate() {
        let mut col = 0;
        if use_parametric {
            for &v in &chip.parametric {
                features[(i, col)] = v;
                col += 1;
            }
        }
        if use_onchip {
            for &k in &monitor_points {
                for &v in &chip.rod[k] {
                    features[(i, col)] = v;
                    col += 1;
                }
                for &v in &chip.cpd[k] {
                    features[(i, col)] = v;
                    col += 1;
                }
            }
        }
        if col != d {
            return Err(ScenarioError::Shape(format!(
                "chip {i}: filled {col} of {d} feature columns"
            )));
        }
        targets.push(chip.vmin_mv[read_point][temp_idx]);
    }

    Dataset::new(features, targets, names).map_err(|e| ScenarioError::Shape(e.to_string()))
}

/// Builds the *streaming snapshot* dataset for read point `k`: the features
/// an in-field telemetry packet actually carries — time-0 parametric data
/// (frozen at production test) plus the monitor readings **at read point
/// `k` itself** — against Vmin at `(k, temp_idx)`.
///
/// Unlike [`assemble_dataset`], whose in-field feature space grows with the
/// read point (all *previous* monitor reads), the snapshot space has the
/// same dimensionality at every read point. That is what lets one model,
/// fitted at production test (read point 0), be *applied unchanged* to
/// every later telemetry packet — the deployment the streaming adaptive
/// layer recalibrates. Monitor feature names carry a `_now` suffix instead
/// of the hour stamp, making the positional consistency explicit.
///
/// # Errors
///
/// Same conditions as [`assemble_dataset`].
///
/// # Examples
///
/// ```
/// use vmin_core::{assemble_stream_snapshot, FeatureSet};
/// use vmin_silicon::{Campaign, DatasetSpec};
///
/// let campaign = Campaign::run(&DatasetSpec::small(), 1);
/// let t0 = assemble_stream_snapshot(&campaign, 0, 1, FeatureSet::Both)?;
/// let t5 = assemble_stream_snapshot(&campaign, 5, 1, FeatureSet::Both)?;
/// assert_eq!(t0.n_features(), t5.n_features()); // constant feature space
/// # Ok::<(), vmin_core::ScenarioError>(())
/// ```
pub fn assemble_stream_snapshot(
    campaign: &Campaign,
    read_point: usize,
    temp_idx: usize,
    feature_set: FeatureSet,
) -> Result<Dataset, ScenarioError> {
    if read_point >= campaign.read_points.len() {
        return Err(ScenarioError::IndexOutOfRange(format!(
            "read point {read_point} (campaign has {})",
            campaign.read_points.len()
        )));
    }
    if temp_idx >= campaign.temperatures.len() {
        return Err(ScenarioError::IndexOutOfRange(format!(
            "temperature index {temp_idx} (campaign has {})",
            campaign.temperatures.len()
        )));
    }
    let use_parametric = matches!(feature_set, FeatureSet::Parametric | FeatureSet::Both);
    let use_onchip = matches!(feature_set, FeatureSet::OnChip | FeatureSet::Both);

    let mut names: Vec<String> = Vec::new();
    if use_parametric {
        names.extend(campaign.parametric_names.iter().cloned());
    }
    if use_onchip {
        names.extend((0..campaign.spec.monitors.rod_count).map(|j| format!("rod_{j:03}_now")));
        names.extend((0..campaign.spec.monitors.cpd_count).map(|j| format!("cpd_{j:02}_now")));
    }

    let n = campaign.chip_count();
    let d = names.len();
    let mut features = Matrix::zeros(n, d);
    let mut targets = Vec::with_capacity(n);
    for (i, chip) in campaign.chips.iter().enumerate() {
        let mut col = 0;
        if use_parametric {
            for &v in &chip.parametric {
                features[(i, col)] = v;
                col += 1;
            }
        }
        if use_onchip {
            for &v in &chip.rod[read_point] {
                features[(i, col)] = v;
                col += 1;
            }
            for &v in &chip.cpd[read_point] {
                features[(i, col)] = v;
                col += 1;
            }
        }
        if col != d {
            return Err(ScenarioError::Shape(format!(
                "chip {i}: filled {col} of {d} snapshot columns"
            )));
        }
        targets.push(chip.vmin_mv[read_point][temp_idx]);
    }

    Dataset::new(features, targets, names).map_err(|e| ScenarioError::Shape(e.to_string()))
}

/// Like [`assemble_dataset`], but additionally appends *trend features* for
/// in-field read points: the per-monitor delta between the latest and the
/// earliest available read (ROD and CPD), explicitly encoding each chip's
/// observed degradation slope.
///
/// §III-A notes that with fewer than 10 read points, time-series models
/// overfit and the paper simply treats each read point as separate
/// features; engineered deltas are the lightweight middle ground and are
/// exercised by the ablation tests.
///
/// For `read_point == 0` (a single monitor read) this is identical to
/// [`assemble_dataset`].
///
/// # Errors
///
/// Same conditions as [`assemble_dataset`].
pub fn assemble_dataset_with_trends(
    campaign: &Campaign,
    read_point: usize,
    temp_idx: usize,
    feature_set: FeatureSet,
) -> Result<Dataset, ScenarioError> {
    let base = assemble_dataset(campaign, read_point, temp_idx, feature_set)?;
    let points = monitor_read_points(read_point);
    if points.len() < 2 || matches!(feature_set, FeatureSet::Parametric) {
        return Ok(base);
    }
    let (Some(&first), Some(&last)) = (points.first(), points.last()) else {
        // unreachable in practice: the points.len() < 2 early return above
        // guarantees at least two monitor read points here.
        return Err(ScenarioError::Shape(
            "monitor read-point schedule is empty".to_string(),
        ));
    };
    let n = campaign.chip_count();
    let rods = campaign.spec.monitors.rod_count;
    let cpds = campaign.spec.monitors.cpd_count;
    let mut names: Vec<String> = (0..rods).map(|j| format!("rod_{j:03}_delta")).collect();
    names.extend((0..cpds).map(|j| format!("cpd_{j:02}_delta")));
    let mut trend = Matrix::zeros(n, rods + cpds);
    for (i, chip) in campaign.chips.iter().enumerate() {
        for j in 0..rods {
            trend[(i, j)] = chip.rod[last][j] - chip.rod[first][j];
        }
        for j in 0..cpds {
            trend[(i, rods + j)] = chip.cpd[last][j] - chip.cpd[first][j];
        }
    }
    let trend_ds = Dataset::new(trend, base.targets().to_vec(), names)
        .map_err(|e| ScenarioError::Shape(e.to_string()))?;
    base.hconcat(&trend_ds)
        .map_err(|e| ScenarioError::Shape(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmin_silicon::DatasetSpec;

    fn campaign() -> Campaign {
        Campaign::run(&DatasetSpec::small(), 3)
    }

    #[test]
    fn monitor_points_follow_the_paper() {
        assert_eq!(monitor_read_points(0), vec![0]);
        assert_eq!(monitor_read_points(1), vec![0]);
        assert_eq!(monitor_read_points(3), vec![0, 1, 2]);
        assert_eq!(monitor_read_points(5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn time0_dimensions() {
        let c = campaign();
        let spec = DatasetSpec::small();
        let par = spec.parametric.total_tests();
        let mon = spec.monitors.rod_count + spec.monitors.cpd_count;
        let both = assemble_dataset(&c, 0, 0, FeatureSet::Both).unwrap();
        assert_eq!(both.n_features(), par + mon);
        let p = assemble_dataset(&c, 0, 0, FeatureSet::Parametric).unwrap();
        assert_eq!(p.n_features(), par);
        let o = assemble_dataset(&c, 0, 0, FeatureSet::OnChip).unwrap();
        assert_eq!(o.n_features(), mon);
    }

    #[test]
    fn infield_features_grow_with_read_point() {
        let c = campaign();
        let spec = DatasetSpec::small();
        let mon = spec.monitors.rod_count + spec.monitors.cpd_count;
        let d2 = assemble_dataset(&c, 2, 0, FeatureSet::OnChip).unwrap();
        assert_eq!(d2.n_features(), 2 * mon); // read points {0, 1}
        let d5 = assemble_dataset(&c, 5, 0, FeatureSet::OnChip).unwrap();
        assert_eq!(d5.n_features(), 5 * mon); // read points {0..4}
    }

    #[test]
    fn infield_uses_only_past_monitor_data() {
        let c = campaign();
        let ds = assemble_dataset(&c, 3, 1, FeatureSet::Both).unwrap();
        // No feature name may reference hour 168 (index 3) or later.
        for name in ds.names() {
            assert!(
                !name.contains("h168") && !name.contains("h504") && !name.contains("h1008"),
                "leaky feature: {name}"
            );
        }
    }

    #[test]
    fn targets_match_campaign_column() {
        let c = campaign();
        let ds = assemble_dataset(&c, 4, 2, FeatureSet::Parametric).unwrap();
        assert_eq!(ds.targets(), c.vmin_column(4, 2).as_slice());
    }

    #[test]
    fn out_of_range_indices_error() {
        let c = campaign();
        assert!(assemble_dataset(&c, 99, 0, FeatureSet::Both).is_err());
        assert!(assemble_dataset(&c, 0, 99, FeatureSet::Both).is_err());
    }

    #[test]
    fn trend_features_extend_infield_datasets() {
        let c = campaign();
        let spec = DatasetSpec::small();
        let per_rp = spec.monitors.rod_count + spec.monitors.cpd_count;
        let base = assemble_dataset(&c, 3, 1, FeatureSet::OnChip).unwrap();
        let trended = assemble_dataset_with_trends(&c, 3, 1, FeatureSet::OnChip).unwrap();
        assert_eq!(trended.n_features(), base.n_features() + per_rp);
        assert!(trended.names().iter().any(|n| n.ends_with("_delta")));
        // Delta columns equal last-minus-first monitor reads.
        let j = base.n_features(); // first delta column = rod 0
        let chip0 = &c.chips[0];
        let expected = chip0.rod[2][0] - chip0.rod[0][0]; // points {0,1,2}
        assert!((trended.sample(0)[j] - expected).abs() < 1e-12);
    }

    #[test]
    fn trend_features_are_identity_at_time0_and_parametric() {
        let c = campaign();
        let t0 = assemble_dataset_with_trends(&c, 0, 1, FeatureSet::Both).unwrap();
        let base0 = assemble_dataset(&c, 0, 1, FeatureSet::Both).unwrap();
        assert_eq!(t0, base0);
        let par = assemble_dataset_with_trends(&c, 4, 1, FeatureSet::Parametric).unwrap();
        let base_par = assemble_dataset(&c, 4, 1, FeatureSet::Parametric).unwrap();
        assert_eq!(par, base_par);
    }

    #[test]
    fn feature_set_display() {
        assert_eq!(FeatureSet::Both.to_string(), "On-chip and Parametric");
        assert_eq!(FeatureSet::Parametric.to_string(), "Parametric");
        assert_eq!(FeatureSet::OnChip.to_string(), "On-chip");
    }
}
