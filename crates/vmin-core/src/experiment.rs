//! Cross-validated experiment drivers reproducing the paper's evaluation
//! protocol (§IV-B): 4-fold CV, the same seed shared by all predictors,
//! 75/25 train/calibration inside CQR, α = 0.1.

use crate::flow::{eval_point_fold, eval_region_fold, FlowError, PointEval, RegionEval};
use crate::scenario::{assemble_dataset, FeatureSet, ScenarioError};
use crate::zoo::{ModelConfig, PointModel, RegionMethod};
use vmin_data::{Dataset, KFold};
use vmin_silicon::Campaign;

/// Protocol parameters shared across all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Miscoverage target (paper: 0.1 → 90% intervals).
    pub alpha: f64,
    /// Number of CV folds (paper: 4).
    pub folds: usize,
    /// Shared random seed (paper: same seed for all predictors).
    pub seed: u64,
    /// Calibration fraction inside CQR (paper: 0.25).
    pub cal_fraction: f64,
    /// Model training budgets.
    pub models: ModelConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            alpha: 0.1,
            folds: 4,
            seed: 2024,
            cal_fraction: 0.25,
            models: ModelConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// Reduced budgets for fast tests.
    pub fn fast() -> Self {
        ExperimentConfig {
            models: ModelConfig::fast(),
            ..ExperimentConfig::default()
        }
    }
}

/// Error from an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// Feature assembly failed.
    Scenario(String),
    /// A fold pipeline failed.
    Flow(String),
    /// A summary table lacked a row the statistic needs.
    MissingSummaryRow(&'static str),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Scenario(m) => write!(f, "scenario failure: {m}"),
            ExperimentError::Flow(m) => write!(f, "flow failure: {m}"),
            ExperimentError::MissingSummaryRow(row) => {
                write!(f, "feature-set study summary lacks the {row} row")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ScenarioError> for ExperimentError {
    fn from(e: ScenarioError) -> Self {
        ExperimentError::Scenario(e.to_string())
    }
}

impl From<FlowError> for ExperimentError {
    fn from(e: FlowError) -> Self {
        ExperimentError::Flow(e.to_string())
    }
}

impl From<vmin_data::DatasetError> for ExperimentError {
    fn from(e: vmin_data::DatasetError) -> Self {
        ExperimentError::Flow(e.to_string())
    }
}

/// Cross-validated point-prediction score for one (read point, temperature)
/// cell — one bar of Fig. 2.
///
/// Returns the average [`PointEval`] across the test folds.
///
/// # Errors
///
/// Propagates assembly and pipeline failures.
pub fn run_point_cell(
    campaign: &Campaign,
    read_point: usize,
    temp_idx: usize,
    model: PointModel,
    feature_set: FeatureSet,
    cfg: &ExperimentConfig,
) -> Result<PointEval, ExperimentError> {
    let ds = assemble_dataset(campaign, read_point, temp_idx, feature_set)?;
    run_point_cell_on(&ds, model, cfg)
}

/// [`run_point_cell`] over a pre-assembled dataset, so harnesses sweeping
/// many models over the same `(read point, temperature)` cell assemble the
/// feature matrix once instead of once per model. Scoring is unchanged.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_point_cell_on(
    ds: &Dataset,
    model: PointModel,
    cfg: &ExperimentConfig,
) -> Result<PointEval, ExperimentError> {
    let _span = vmin_trace::span("core.run_point_cell");
    vmin_trace::counter_add("core.cells.point", 1);
    let kf = KFold::new(ds.n_samples(), cfg.folds, cfg.seed);
    let splits: Vec<_> = kf.iter().collect();
    // Folds are independent; evaluate them on worker threads and reduce the
    // sums serially in fold order so the cell score is bit-identical to a
    // serial run at any thread count.
    let evals = vmin_par::par_map(
        &splits,
        2,
        |_, split| -> Result<PointEval, ExperimentError> {
            let train = ds.subset_rows(&split.train)?;
            let test = ds.subset_rows(&split.test)?;
            Ok(eval_point_fold(model, &cfg.models, &train, &test)?)
        },
    );
    let mut r2_sum = 0.0;
    let mut rmse_sum = 0.0;
    let mut nfeat_sum = 0usize;
    for eval in evals {
        let eval = eval?;
        r2_sum += eval.r2;
        rmse_sum += eval.rmse;
        nfeat_sum += eval.n_features;
    }
    let k = cfg.folds as f64;
    Ok(PointEval {
        r2: r2_sum / k,
        rmse: rmse_sum / k,
        n_features: nfeat_sum / cfg.folds,
    })
}

/// Cross-validated region-prediction score for one cell — one row-cell of
/// Table III.
///
/// # Errors
///
/// Propagates assembly and pipeline failures.
pub fn run_region_cell(
    campaign: &Campaign,
    read_point: usize,
    temp_idx: usize,
    method: RegionMethod,
    feature_set: FeatureSet,
    cfg: &ExperimentConfig,
) -> Result<RegionEval, ExperimentError> {
    let ds = assemble_dataset(campaign, read_point, temp_idx, feature_set)?;
    run_region_cell_on(&ds, method, cfg)
}

/// [`run_region_cell`] over a pre-assembled dataset: Table III sweeps nine
/// methods over every cell, and the feature matrix is identical for all of
/// them — assemble it once and share it. Scoring is unchanged, so cells are
/// bit-identical to the assemble-per-method path.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_region_cell_on(
    ds: &Dataset,
    method: RegionMethod,
    cfg: &ExperimentConfig,
) -> Result<RegionEval, ExperimentError> {
    let _span = vmin_trace::span("core.run_region_cell");
    vmin_trace::counter_add("core.cells.region", 1);
    let kf = KFold::new(ds.n_samples(), cfg.folds, cfg.seed);
    let splits: Vec<_> = kf.iter().collect();
    // Fold-parallel with a serial fold-order reduction — bit-identical to a
    // serial run. `par_map` hands the closure the fold index, which keeps
    // the per-fold seed family intact.
    let evals = vmin_par::par_map(
        &splits,
        2,
        |fold, split| -> Result<RegionEval, ExperimentError> {
            let train = ds.subset_rows(&split.train)?;
            let test = ds.subset_rows(&split.test)?;
            Ok(eval_region_fold(
                method,
                &cfg.models,
                &train,
                &test,
                cfg.alpha,
                cfg.cal_fraction,
                // Same seed family for every method (fair comparison, §IV-B),
                // distinct per fold.
                cfg.seed.wrapping_add(fold as u64),
            )?)
        },
    );
    let mut len_sum = 0.0;
    let mut cov_sum = 0.0;
    for eval in evals {
        let eval = eval?;
        len_sum += eval.mean_length;
        cov_sum += eval.coverage;
    }
    let k = cfg.folds as f64;
    vmin_trace::histogram_record("core.cell.coverage", cov_sum / k);
    vmin_trace::histogram_record("core.cell.mean_length", len_sum / k);
    Ok(RegionEval {
        mean_length: len_sum / k,
        coverage: cov_sum / k,
    })
}

/// One row of the Table IV summary: interval stats per temperature for a
/// feature set, averaged across all stress read points.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSetSummary {
    /// The feature family evaluated.
    pub feature_set: FeatureSet,
    /// Mean interval length (mV) per temperature index, averaged over read
    /// points.
    pub length_per_temp: Vec<f64>,
    /// Grand average across temperatures.
    pub average_length: f64,
}

/// Runs the Table IV / Fig. 3 study: CQR with the given base model on each
/// feature set, averaged across every read point.
///
/// # Errors
///
/// Propagates assembly and pipeline failures.
pub fn run_feature_set_study(
    campaign: &Campaign,
    method: RegionMethod,
    cfg: &ExperimentConfig,
) -> Result<Vec<FeatureSetSummary>, ExperimentError> {
    let mut out = Vec::new();
    for feature_set in [FeatureSet::Parametric, FeatureSet::OnChip, FeatureSet::Both] {
        let n_temps = campaign.temperatures.len();
        let n_rps = campaign.read_points.len();
        // Every (temperature, read point) cell is independent: run the whole
        // grid on worker threads, then accumulate serially in the original
        // temp-major order so the averages are bit-identical to a serial run.
        let cells: Vec<(usize, usize)> = (0..n_temps)
            .flat_map(|t| (0..n_rps).map(move |rp| (t, rp)))
            .collect();
        let evals = vmin_par::par_map(&cells, 2, |_, &(temp_idx, rp)| {
            run_region_cell(campaign, rp, temp_idx, method, feature_set, cfg)
        });
        let mut per_temp = vec![0.0; n_temps];
        for (&(temp_idx, _), eval) in cells.iter().zip(evals) {
            per_temp[temp_idx] += eval?.mean_length;
        }
        for v in &mut per_temp {
            *v /= n_rps as f64;
        }
        let average = per_temp.iter().sum::<f64>() / n_temps as f64;
        out.push(FeatureSetSummary {
            feature_set,
            length_per_temp: per_temp,
            average_length: average,
        });
    }
    Ok(out)
}

/// The headline Table IV statistic: relative interval-length reduction from
/// adding on-chip monitors to parametric data (paper: ≈ 21%).
///
/// # Errors
///
/// [`ExperimentError::MissingSummaryRow`] when `summaries` lacks the
/// Parametric or Both row — e.g. a partial study driven by a caller that
/// restricted the feature sets.
pub fn onchip_monitor_gain(summaries: &[FeatureSetSummary]) -> Result<f64, ExperimentError> {
    let parametric = summaries
        .iter()
        .find(|s| s.feature_set == FeatureSet::Parametric)
        .ok_or(ExperimentError::MissingSummaryRow("Parametric"))?;
    let both = summaries
        .iter()
        .find(|s| s.feature_set == FeatureSet::Both)
        .ok_or(ExperimentError::MissingSummaryRow("Both"))?;
    Ok((parametric.average_length - both.average_length) / parametric.average_length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmin_silicon::DatasetSpec;

    fn campaign() -> Campaign {
        Campaign::run(&DatasetSpec::small(), 11)
    }

    #[test]
    fn point_cell_linear_gets_signal() {
        let c = campaign();
        let eval = run_point_cell(
            &c,
            0,
            1,
            PointModel::Linear,
            FeatureSet::Both,
            &ExperimentConfig::fast(),
        )
        .unwrap();
        assert!(
            eval.r2 > 0.3,
            "time-0 Vmin should be predictable from full features, R²={}",
            eval.r2
        );
    }

    #[test]
    fn region_cell_cqr_linear_covers() {
        let c = campaign();
        let eval = run_region_cell(
            &c,
            0,
            1,
            RegionMethod::Cqr(PointModel::Linear),
            FeatureSet::Both,
            &ExperimentConfig::fast(),
        )
        .unwrap();
        // Small-n + guarantee → coverage near or above 1−α on average.
        assert!(eval.coverage > 0.7, "CQR coverage {}", eval.coverage);
        assert!(eval.mean_length > 0.0);
    }

    #[test]
    fn feature_set_study_has_three_rows() {
        let c = campaign();
        // 4 folds keep the CQR calibration split above
        // min_calibration_size(0.1) = 9 chips on the small campaign.
        let cfg = ExperimentConfig::fast();
        let rows = run_feature_set_study(&c, RegionMethod::Cqr(PointModel::Linear), &cfg).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.length_per_temp.len(), 3);
            assert!(r.average_length > 0.0);
        }
        let gain = onchip_monitor_gain(&rows).unwrap();
        assert!(gain.is_finite());
        // A study missing the Both row cannot produce the gain statistic.
        let partial: Vec<_> = rows
            .iter()
            .filter(|r| r.feature_set != FeatureSet::Both)
            .cloned()
            .collect();
        assert!(matches!(
            onchip_monitor_gain(&partial),
            Err(ExperimentError::MissingSummaryRow("Both"))
        ));
    }

    #[test]
    fn cell_on_preassembled_dataset_is_bit_identical() {
        let c = campaign();
        let cfg = ExperimentConfig::fast();
        let ds = assemble_dataset(&c, 0, 1, FeatureSet::Both).unwrap();
        let via_campaign = run_region_cell(
            &c,
            0,
            1,
            RegionMethod::Cqr(PointModel::Linear),
            FeatureSet::Both,
            &cfg,
        )
        .unwrap();
        let via_dataset =
            run_region_cell_on(&ds, RegionMethod::Cqr(PointModel::Linear), &cfg).unwrap();
        assert_eq!(via_campaign, via_dataset);
        let p_campaign =
            run_point_cell(&c, 0, 1, PointModel::Linear, FeatureSet::Both, &cfg).unwrap();
        let p_dataset = run_point_cell_on(&ds, PointModel::Linear, &cfg).unwrap();
        assert_eq!(p_campaign, p_dataset);
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.alpha, 0.1);
        assert_eq!(cfg.folds, 4);
        assert_eq!(cfg.cal_fraction, 0.25);
    }
}
