//! Property-based tests on the framework layer: feature-assembly causality,
//! dataset alignment, and predictor robustness across arbitrary seeds.

use proptest::prelude::*;
use vmin_core::{
    assemble_dataset, monitor_read_points, FeatureSet, ModelConfig, PointModel, RegionMethod,
    VminPredictor,
};
use vmin_silicon::{Campaign, DatasetSpec};

fn tiny_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::small();
    spec.chip_count = 24;
    spec.paths_per_chip = 4;
    spec.parametric.iddq_per_temp = 4;
    spec.parametric.trip_idd_per_temp = 2;
    spec.parametric.leakage_per_temp = 3;
    spec.parametric.artifact_per_temp = 1;
    spec.monitors.rod_count = 8;
    spec.monitors.cpd_count = 2;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Monitor read points are always strictly causal and non-empty.
    #[test]
    fn monitor_points_strictly_causal(rp in 0usize..12) {
        let pts = monitor_read_points(rp);
        prop_assert!(!pts.is_empty());
        if rp == 0 {
            prop_assert_eq!(pts, vec![0]);
        } else {
            prop_assert!(pts.iter().all(|&p| p < rp));
            prop_assert_eq!(pts.len(), rp);
        }
    }

    /// Any (seed, read point, temperature, feature set) assembles a dataset
    /// whose shape follows the campaign spec exactly.
    #[test]
    fn assembly_shape_invariant(
        seed in 0u64..500,
        rp in 0usize..6,
        temp in 0usize..3,
        fs_pick in 0usize..3,
    ) {
        let spec = tiny_spec();
        let campaign = Campaign::run(&spec, seed);
        let fs = [FeatureSet::Parametric, FeatureSet::OnChip, FeatureSet::Both][fs_pick];
        let ds = assemble_dataset(&campaign, rp, temp, fs).unwrap();
        prop_assert_eq!(ds.n_samples(), spec.chip_count);
        let per_rp = spec.monitors.rod_count + spec.monitors.cpd_count;
        let monitor_cols = monitor_read_points(rp).len() * per_rp;
        let expected = match fs {
            FeatureSet::Parametric => spec.parametric.total_tests(),
            FeatureSet::OnChip => monitor_cols,
            FeatureSet::Both => spec.parametric.total_tests() + monitor_cols,
        };
        prop_assert_eq!(ds.n_features(), expected);
        prop_assert_eq!(ds.names().len(), expected);
        prop_assert!(ds.targets().iter().all(|v| v.is_finite()));
    }

    /// Targets always equal the campaign's Vmin column for the same cell.
    #[test]
    fn assembly_targets_aligned(seed in 0u64..200, rp in 0usize..6, temp in 0usize..3) {
        let campaign = Campaign::run(&tiny_spec(), seed);
        let ds = assemble_dataset(&campaign, rp, temp, FeatureSet::OnChip).unwrap();
        let expected = campaign.vmin_column(rp, temp);
        prop_assert_eq!(ds.targets(), expected.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A CQR predictor fits and produces ordered, finite intervals for any
    /// campaign seed (α = 0.25 keeps the tiny calibration set workable).
    #[test]
    fn predictor_robust_across_seeds(seed in 0u64..100) {
        let campaign = Campaign::run(&tiny_spec(), seed * 37 + 5);
        let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
        let p = VminPredictor::fit(
            &ds,
            RegionMethod::Cqr(PointModel::Linear),
            0.25,
            0.4,
            seed,
            &ModelConfig::fast(),
        )
        .unwrap();
        for i in 0..ds.n_samples().min(6) {
            let iv = p.interval(ds.sample(i)).unwrap();
            prop_assert!(iv.lo() <= iv.hi());
            prop_assert!(iv.lo().is_finite() && iv.hi().is_finite());
        }
    }
}
