//! Property-style tests on the framework layer: feature-assembly causality,
//! dataset alignment, and predictor robustness across arbitrary seeds.
//! Seeded in-tree randomness keeps the suite hermetic; `heavy-tests`
//! multiplies case counts.

use vmin_core::{
    assemble_dataset, monitor_read_points, FeatureSet, ModelConfig, PointModel, RegionMethod,
    VminPredictor,
};
use vmin_rng::{ChaCha8Rng, Rng, SeedableRng};
use vmin_silicon::{Campaign, DatasetSpec};

fn tiny_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::small();
    spec.chip_count = 24;
    spec.paths_per_chip = 4;
    spec.parametric.iddq_per_temp = 4;
    spec.parametric.trip_idd_per_temp = 2;
    spec.parametric.leakage_per_temp = 3;
    spec.parametric.artifact_per_temp = 1;
    spec.monitors.rod_count = 8;
    spec.monitors.cpd_count = 2;
    spec
}

/// Monitor read points are always strictly causal and non-empty.
#[test]
fn monitor_points_strictly_causal() {
    for rp in 0..12 {
        let pts = monitor_read_points(rp);
        assert!(!pts.is_empty());
        if rp == 0 {
            assert_eq!(pts, vec![0]);
        } else {
            assert!(pts.iter().all(|&p| p < rp));
            assert_eq!(pts.len(), rp);
        }
    }
}

/// Any (seed, read point, temperature, feature set) assembles a dataset
/// whose shape follows the campaign spec exactly.
#[test]
fn assembly_shape_invariant() {
    let mut rng = ChaCha8Rng::seed_from_u64(601);
    let reps = if cfg!(feature = "heavy-tests") {
        48
    } else {
        12
    };
    for _ in 0..reps {
        let seed = rng.gen_range(0..500u64);
        let rp = rng.gen_range(0..6usize);
        let temp = rng.gen_range(0..3usize);
        let fs_pick = rng.gen_range(0..3usize);
        let spec = tiny_spec();
        let campaign = Campaign::run(&spec, seed);
        let fs = [FeatureSet::Parametric, FeatureSet::OnChip, FeatureSet::Both][fs_pick];
        let ds = assemble_dataset(&campaign, rp, temp, fs).unwrap();
        assert_eq!(ds.n_samples(), spec.chip_count);
        let per_rp = spec.monitors.rod_count + spec.monitors.cpd_count;
        let monitor_cols = monitor_read_points(rp).len() * per_rp;
        let expected = match fs {
            FeatureSet::Parametric => spec.parametric.total_tests(),
            FeatureSet::OnChip => monitor_cols,
            FeatureSet::Both => spec.parametric.total_tests() + monitor_cols,
        };
        assert_eq!(ds.n_features(), expected);
        assert_eq!(ds.names().len(), expected);
        assert!(ds.targets().iter().all(|v| v.is_finite()));
    }
}

/// Targets always equal the campaign's Vmin column for the same cell.
#[test]
fn assembly_targets_aligned() {
    let mut rng = ChaCha8Rng::seed_from_u64(602);
    let reps = if cfg!(feature = "heavy-tests") {
        48
    } else {
        12
    };
    for _ in 0..reps {
        let seed = rng.gen_range(0..200u64);
        let rp = rng.gen_range(0..6usize);
        let temp = rng.gen_range(0..3usize);
        let campaign = Campaign::run(&tiny_spec(), seed);
        let ds = assemble_dataset(&campaign, rp, temp, FeatureSet::OnChip).unwrap();
        let expected = campaign.vmin_column(rp, temp);
        assert_eq!(ds.targets(), expected.as_slice());
    }
}

/// A CQR predictor fits and produces ordered, finite intervals for any
/// campaign seed (α = 0.25 keeps the tiny calibration set workable).
#[test]
fn predictor_robust_across_seeds() {
    let mut rng = ChaCha8Rng::seed_from_u64(603);
    let reps = if cfg!(feature = "heavy-tests") { 16 } else { 4 };
    for _ in 0..reps {
        let seed = rng.gen_range(0..100u64);
        let campaign = Campaign::run(&tiny_spec(), seed * 37 + 5);
        let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
        let p = VminPredictor::fit(
            &ds,
            RegionMethod::Cqr(PointModel::Linear),
            0.25,
            0.4,
            seed,
            &ModelConfig::fast(),
        )
        .unwrap();
        for i in 0..ds.n_samples().min(6) {
            let iv = p.interval(ds.sample(i)).unwrap();
            assert!(iv.lo() <= iv.hi());
            assert!(iv.lo().is_finite() && iv.hi().is_finite());
        }
    }
}
