//! Small-state generators: SplitMix64 (seeding) and xoshiro256**.

use crate::{RngCore, SeedableRng};

/// The SplitMix64 generator of Steele, Lea and Flood.
///
/// Primarily the seed-expansion stream behind
/// [`SeedableRng::seed_from_u64`], but a valid (if statistically modest)
/// generator in its own right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a raw 64-bit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: [u8; 8]) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }
}

/// The xoshiro256** generator of Blackman and Vigna: 256 bits of state,
/// excellent statistical quality, very fast — the pick for
/// throughput-sensitive inner loops where ChaCha's mixing is overkill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state is a fixed point of the transition; nudge it
        // through SplitMix64 exactly as the reference implementation
        // recommends.
        if s == [0, 0, 0, 0] {
            let mut sm = SplitMix64::new(0);
            for word in s.iter_mut() {
                *word = sm.next_u64();
            }
        }
        Xoshiro256StarStar { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First output for seed 0 from the public-domain splitmix64.c by
        // Sebastiano Vigna.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn splitmix64_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_zero_seed_escapes_fixed_point() {
        let mut rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        let words: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }
}
