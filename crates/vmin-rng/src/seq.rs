//! Sequence helpers: shuffling and random element choice.

use crate::{Rng, RngCore};

/// Random operations on slices, mirroring the familiar `SliceRandom`
/// surface.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place with the Fisher–Yates algorithm.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly-chosen element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChaCha8Rng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        let mut ra = ChaCha8Rng::seed_from_u64(7);
        let mut rb = ChaCha8Rng::seed_from_u64(7);
        a.shuffle(&mut ra);
        b.shuffle(&mut rb);
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_actually_moves_elements() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let fixed = v.iter().enumerate().filter(|(i, &x)| *i == x).count();
        // Expected number of fixed points of a random permutation is 1.
        assert!(fixed < 15, "{fixed} fixed points");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_hits_every_element_eventually() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let items = [10u32, 20, 30, 40];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).expect("non-empty");
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_element_shuffle_is_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut v = [42];
        v.shuffle(&mut rng);
        assert_eq!(v, [42]);
    }
}
