//! # vmin-rng
//!
//! Self-contained deterministic pseudo-randomness for the `cqr-vmin`
//! workspace. The workspace must build hermetically with no network access,
//! so instead of the `rand`/`rand_chacha` registry crates it carries this
//! small in-tree substrate exposing the same API surface the codebase uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`]: the core trait trio.
//!   [`Rng`] provides [`Rng::gen`], [`Rng::gen_range`] and
//!   [`Rng::gen_bool`] over any `RngCore`.
//! - [`ChaCha8Rng`]: an 8-round ChaCha stream cipher used as the
//!   workspace-wide deterministic generator (drop-in for
//!   `vmin_rng::ChaCha8Rng` call sites).
//! - [`Xoshiro256StarStar`]: a fast small-state generator for
//!   throughput-sensitive inner loops.
//! - [`SplitMix64`]: the seeding stream used by
//!   [`SeedableRng::seed_from_u64`] (and a valid tiny generator itself).
//! - [`seq::SliceRandom`]: Fisher–Yates [`seq::SliceRandom::shuffle`] and
//!   [`seq::SliceRandom::choose`] on slices.
//!
//! Determinism is the contract: for a fixed seed every generator produces
//! an identical stream on every platform (all arithmetic is integer or
//! exactly-rounded f64), which is what makes campaigns, splits and
//! corruption injection reproducible.
//!
//! ## Example
//!
//! ```
//! use vmin_rng::{ChaCha8Rng, Rng, SeedableRng};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let u: f64 = rng.gen();            // uniform [0, 1)
//! let k = rng.gen_range(0..10usize); // uniform integer
//! assert!((0.0..1.0).contains(&u));
//! assert!(k < 10);
//!
//! // Same seed, same stream.
//! let mut a = ChaCha8Rng::seed_from_u64(42);
//! let mut b = ChaCha8Rng::seed_from_u64(42);
//! assert_eq!(a.gen::<f64>(), b.gen::<f64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chacha;
mod range;
pub mod seq;
mod xoshiro;

pub use chacha::ChaCha8Rng;
pub use range::{SampleRange, SampleUniform};
pub use xoshiro::{SplitMix64, Xoshiro256StarStar};

/// The minimal generator interface: raw 32/64-bit words and byte fills.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types sampleable uniformly from a generator's raw bits via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; integers: full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed through [`SplitMix64`] — the
    /// conventional low-friction seeding used across the workspace.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut c = ChaCha8Rng::seed_from_u64(6);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) gave {frac}");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn works_through_unsized_rng_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }
}
