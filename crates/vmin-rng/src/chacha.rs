//! An 8-round ChaCha stream cipher used as a pseudo-random generator.
//!
//! ChaCha8 is the workspace's default generator: cryptographic-quality
//! mixing, a 256-bit seed and a counter-based stream, so independent seeds
//! give independent streams and the output is platform-identical.

use crate::{RngCore, SeedableRng};

/// ChaCha block constants: `"expand 32-byte k"` in little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Number of ChaCha rounds (8 = 4 double rounds).
const ROUNDS: usize = 8;

/// A deterministic generator backed by the ChaCha stream cipher with 8
/// rounds.
///
/// # Examples
///
/// ```
/// use vmin_rng::{ChaCha8Rng, Rng, SeedableRng};
///
/// let mut rng = ChaCha8Rng::seed_from_u64(2024);
/// let x = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Buffered output words of the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn stream_continues_across_blocks() {
        // 16 words per block: word 16 must come from a fresh block, and the
        // stream must never stall or repeat the previous block.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn output_bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 4096;
        let ones: u32 = (0..n).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (n as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let words: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }
}
