//! Uniform sampling from ranges: [`SampleUniform`] and [`SampleRange`].

use core::ops::{Range, RangeInclusive};

use crate::RngCore;

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    ///
    /// Callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from the closed range `[lo, hi]`.
    ///
    /// Callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Draws a `u64` uniformly from `[0, span)` without modulo bias, by
/// rejection sampling on the top of the 64-bit word.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` representable in u64 arithmetic; values at
    // or above it would bias the low residues.
    let cap = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < cap {
            return x % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    // Full 64-bit-wide domain: every word is a valid draw.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `[0, 1)` with 24 bits of precision.
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + unit_f64(rng) * (hi - lo);
        // Rounding of lo + u*(hi-lo) can land exactly on hi; fold that
        // boundary case back to keep the half-open contract.
        if v < hi {
            v
        } else {
            lo
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + unit_f32(rng) * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + unit_f32(rng) * (hi - lo)
    }
}

/// Range shapes accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use crate::{ChaCha8Rng, Rng, SeedableRng};

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(3..17usize);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&b));
        }
    }

    #[test]
    fn integer_range_covers_all_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all residues hit: {seen:?}");
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..1_000 {
            match rng.gen_range(0..=3u32) {
                0 => lo_hit = true,
                3 => hi_hit = true,
                _ => {}
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn float_range_stays_half_open() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.35..0.90f64);
            assert!((0.35..0.90).contains(&x));
        }
    }

    #[test]
    fn negative_integer_range_is_uniformish() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 30_000;
        let sum: i64 = (0..n).map(|_| rng.gen_range(-100..100i64)).sum();
        let mean = sum as f64 / n as f64;
        // Expected mean is -0.5 (range is [-100, 99]).
        assert!((mean + 0.5).abs() < 2.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn singleton_inclusive_range_is_fine() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(rng.gen_range(42..=42u64), 42);
    }
}
