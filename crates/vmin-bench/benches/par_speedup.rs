//! Serial-vs-parallel timing for the three hot paths the `vmin-par` layer
//! accelerates: the tiled matmul kernel, the silicon campaign simulation,
//! and a Table III region-prediction cell.
//!
//! Each workload is timed twice — pinned to one thread via
//! `vmin_par::with_threads(1, ..)` and on the default pool — so the JSON
//! report (`VMIN_BENCH_JSON=BENCH_PR2.json cargo bench -p vmin-bench
//! --bench par_speedup`) exposes the speedup next to the thread count. On a
//! single-core host the two numbers coincide by construction: the pool
//! falls back to the serial path.

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_core::{run_region_cell, ExperimentConfig, FeatureSet, PointModel, RegionMethod};
use vmin_linalg::Matrix;
use vmin_silicon::{Campaign, DatasetSpec};

/// Deterministic dense test matrix (same LCG family as the linalg tests).
fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

fn bench_par_speedup(c: &mut Criterion) {
    let a = pseudo_random(160, 220, 11);
    let b = pseudo_random(220, 140, 12);
    let campaign = Campaign::run(&DatasetSpec::small(), 7);
    let cfg = ExperimentConfig::fast();

    let mut group = c.benchmark_group("par_speedup");
    group.sample_size(10);

    group.bench_function("matmul_serial", |bch| {
        bch.iter(|| vmin_par::with_threads(1, || a.matmul(&b).unwrap()))
    });
    group.bench_function("matmul_parallel", |bch| bch.iter(|| a.matmul(&b).unwrap()));

    group.bench_function("campaign_small_serial", |bch| {
        bch.iter(|| vmin_par::with_threads(1, || Campaign::run(&DatasetSpec::small(), 7)))
    });
    group.bench_function("campaign_small_parallel", |bch| {
        bch.iter(|| Campaign::run(&DatasetSpec::small(), 7))
    });

    group.bench_function("table3_region_cell_serial", |bch| {
        bch.iter(|| {
            vmin_par::with_threads(1, || {
                run_region_cell(
                    &campaign,
                    0,
                    1,
                    RegionMethod::Cqr(PointModel::Linear),
                    FeatureSet::Both,
                    &cfg,
                )
                .unwrap()
            })
        })
    });
    group.bench_function("table3_region_cell_parallel", |bch| {
        bch.iter(|| {
            run_region_cell(
                &campaign,
                0,
                1,
                RegionMethod::Cqr(PointModel::Linear),
                FeatureSet::Both,
                &cfg,
            )
            .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_par_speedup);
criterion_main!(benches);
