//! Thread-sweep timing for the hot paths the `vmin-par` layer accelerates,
//! plus uncached-vs-cached fit timing for the `vmin-models` fit-plan cache.
//!
//! The `par_speedup` group runs each workload once per thread count in
//! {1, 2, available} via `vmin_par::with_threads`, writing one row per
//! thread count (ids end in `_threads{n}`). Earlier revisions timed a
//! "serial" and a "parallel" row in a single invocation, which measured the
//! same code path whenever the process was pinned to one thread — the sweep
//! makes the thread count part of the benchmark id instead of an ambient
//! setting. On a single-core host the rows coincide by construction.
//!
//! The `fit_cache` group times GBT-family fits on the Table III design
//! matrix (156 chips, full feature set) and a whole region cell, with the
//! fit-plan cache pinned off (`_uncached`) and on (`_cached`) via
//! `vmin_models::with_fit_cache`. Outputs are byte-identical either way;
//! only the time should move. Histograms are pinned off here so the group
//! keeps measuring the exact-scan path the cache was built for.
//!
//! The `fit_hist` group (PR 7) times the same Table III fits with the
//! histogram-binned split path pinned off (`_exact`) and on (`_hist`) via
//! `vmin_models::with_histograms` — the exact/binned pairs behind
//! `BENCH_PR7.json`. Unlike the fit-plan cache these are different
//! estimators (quantile-binned candidate thresholds), so only times are
//! comparable, not output bits.
//!
//! After the groups run in bench mode, `assert_small_input_thread2_sanity`
//! re-reads the recorded minima and fails the process if the 2-thread rows
//! of the small workloads regress materially past their 1-thread rows —
//! the serial-fallback thresholds exist precisely to keep thread handoff
//! off tiny inputs.
//!
//! Run: `VMIN_BENCH_JSON=BENCH_PR7.json cargo bench -p vmin-bench --bench par_speedup`

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_core::{
    assemble_dataset, run_region_cell_on, ExperimentConfig, FeatureSet, PointModel, RegionMethod,
};
use vmin_linalg::Matrix;
use vmin_models::{GradientBoost, Loss, ObliviousBoost, Regressor};
use vmin_silicon::{Campaign, DatasetSpec};

/// Deterministic dense test matrix (same LCG family as the linalg tests).
fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let data: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Thread counts to sweep: 1, 2 and whatever the pool would use, deduped
/// and ascending so the ids stay stable across hosts.
fn thread_sweep() -> Vec<usize> {
    let mut counts = vec![1, 2, vmin_par::current_threads()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn bench_par_speedup(c: &mut Criterion) {
    let a = pseudo_random(160, 220, 11);
    let b = pseudo_random(220, 140, 12);
    let campaign = Campaign::run(&DatasetSpec::small(), 7);
    let cfg = ExperimentConfig::fast();
    let cell = assemble_dataset(&campaign, 0, 1, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble small cell: {e}")));

    let mut group = c.benchmark_group("par_speedup");
    group.sample_size(10);

    for threads in thread_sweep() {
        group.bench_function(&format!("matmul_threads{threads}"), |bch| {
            bch.iter(|| {
                vmin_par::with_threads(threads, || {
                    a.matmul(&b)
                        .unwrap_or_else(|e| die(&format!("matmul: {e}")))
                })
            })
        });
        group.bench_function(&format!("campaign_small_threads{threads}"), |bch| {
            bch.iter(|| vmin_par::with_threads(threads, || Campaign::run(&DatasetSpec::small(), 7)))
        });
        group.bench_function(&format!("table3_region_cell_threads{threads}"), |bch| {
            bch.iter(|| {
                vmin_par::with_threads(threads, || {
                    run_region_cell_on(&cell, RegionMethod::Cqr(PointModel::Linear), &cfg)
                        .unwrap_or_else(|e| die(&format!("region cell: {e}")))
                })
            })
        });
    }

    group.finish();
}

fn bench_fit_cache(c: &mut Criterion) {
    // The Table III workload proper: the paper-sized campaign (156 chips)
    // and the full feature set at a stress read point.
    let campaign = Campaign::run(&DatasetSpec::default(), 7);
    let ds = assemble_dataset(&campaign, 1, 1, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble table3 cell: {e}")));
    let x = ds.features().clone();
    let y = ds.targets().to_vec();
    let cfg = ExperimentConfig::fast();

    let mut group = c.benchmark_group("fit_cache");
    group.sample_size(10);

    // Lock order: the fit-cache guard is taken before the histogram guard
    // everywhere in the workspace (matches the equivalence tests).
    let gbt_fit = |cache_on: bool| {
        vmin_models::with_fit_cache(cache_on, || {
            vmin_models::with_histograms(false, || {
                let mut m = GradientBoost::new(Loss::Pinball(0.95));
                m.fit(&x, &y)
                    .unwrap_or_else(|e| die(&format!("gbt fit: {e}")));
                m
            })
        })
    };
    group.bench_function("gbt_fit_uncached", |bch| bch.iter(|| gbt_fit(false)));
    group.bench_function("gbt_fit_cached", |bch| bch.iter(|| gbt_fit(true)));

    let catboost_fit = |cache_on: bool| {
        vmin_models::with_fit_cache(cache_on, || {
            vmin_models::with_histograms(false, || {
                let mut m = ObliviousBoost::new(Loss::Pinball(0.95));
                m.fit(&x, &y)
                    .unwrap_or_else(|e| die(&format!("catboost fit: {e}")));
                m
            })
        })
    };
    group.bench_function("catboost_fit_uncached", |bch| {
        bch.iter(|| catboost_fit(false))
    });
    group.bench_function("catboost_fit_cached", |bch| bch.iter(|| catboost_fit(true)));

    let region_cell = |cache_on: bool| {
        vmin_models::with_fit_cache(cache_on, || {
            vmin_models::with_histograms(false, || {
                run_region_cell_on(&ds, RegionMethod::Cqr(PointModel::Xgboost), &cfg)
                    .unwrap_or_else(|e| die(&format!("cqr xgb cell: {e}")))
            })
        })
    };
    group.bench_function("cqr_xgb_region_cell_uncached", |bch| {
        bch.iter(|| region_cell(false))
    });
    group.bench_function("cqr_xgb_region_cell_cached", |bch| {
        bch.iter(|| region_cell(true))
    });

    group.finish();
}

fn bench_fit_hist(c: &mut Criterion) {
    // Same Table III workload as `fit_cache`, but sweeping the histogram
    // switch instead of the plan cache. The fit-plan cache keeps its
    // ambient default (on), which is the production configuration: the
    // binned path reuses the plan's memoized bin tables, the exact path
    // its sorted-column blocks.
    let campaign = Campaign::run(&DatasetSpec::default(), 7);
    let ds = assemble_dataset(&campaign, 1, 1, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble table3 cell: {e}")));
    let x = ds.features().clone();
    let y = ds.targets().to_vec();
    let cfg = ExperimentConfig::fast();

    let mut group = c.benchmark_group("fit_hist");
    group.sample_size(10);

    let gbt_fit = |hist_on: bool| {
        vmin_models::with_histograms(hist_on, || {
            let mut m = GradientBoost::new(Loss::Pinball(0.95));
            m.fit(&x, &y)
                .unwrap_or_else(|e| die(&format!("gbt fit: {e}")));
            m
        })
    };
    group.bench_function("gbt_fit_exact", |bch| bch.iter(|| gbt_fit(false)));
    group.bench_function("gbt_fit_hist", |bch| bch.iter(|| gbt_fit(true)));

    let catboost_fit = |hist_on: bool| {
        vmin_models::with_histograms(hist_on, || {
            let mut m = ObliviousBoost::new(Loss::Pinball(0.95));
            m.fit(&x, &y)
                .unwrap_or_else(|e| die(&format!("catboost fit: {e}")));
            m
        })
    };
    group.bench_function("catboost_fit_exact", |bch| bch.iter(|| catboost_fit(false)));
    group.bench_function("catboost_fit_hist", |bch| bch.iter(|| catboost_fit(true)));

    let region_cell = |hist_on: bool| {
        vmin_models::with_histograms(hist_on, || {
            run_region_cell_on(&ds, RegionMethod::Cqr(PointModel::Xgboost), &cfg)
                .unwrap_or_else(|e| die(&format!("cqr xgb cell: {e}")))
        })
    };
    group.bench_function("cqr_xgb_region_cell_exact", |bch| {
        bch.iter(|| region_cell(false))
    });
    group.bench_function("cqr_xgb_region_cell_hist", |bch| {
        bch.iter(|| region_cell(true))
    });

    let region_cell_cb = |hist_on: bool| {
        vmin_models::with_histograms(hist_on, || {
            run_region_cell_on(&ds, RegionMethod::Cqr(PointModel::CatBoost), &cfg)
                .unwrap_or_else(|e| die(&format!("cqr catboost cell: {e}")))
        })
    };
    group.bench_function("cqr_catboost_region_cell_exact", |bch| {
        bch.iter(|| region_cell_cb(false))
    });
    group.bench_function("cqr_catboost_region_cell_hist", |bch| {
        bch.iter(|| region_cell_cb(true))
    });

    group.finish();
}

/// Serial-fallback regression guard (PR 7): `BENCH_PR5.json` showed the
/// 2-thread rows of the two smallest workloads running *slower* than their
/// 1-thread rows — thread handoff overhead on inputs below the profitable
/// size. After raising the fallback thresholds, the 2-thread minima must
/// stay within a noise margin of the 1-thread minima. Runs only in bench
/// mode (smoke mode records a single untrustworthy sample) and only over
/// ids that were actually recorded.
fn assert_small_input_thread2_sanity(c: &mut Criterion) {
    if !c.is_bench_mode() {
        return;
    }
    let min_of = |id: &str| {
        c.records()
            .iter()
            .find(|r| r.group == "par_speedup" && r.id == id)
            .map(|r| r.min_ns)
    };
    let checks = [
        ("matmul_threads1", "matmul_threads2", 1.6),
        // PR 10: BENCH_PR7.json showed campaign_small 16% slower at two
        // threads (26.2 ms vs 22.6 ms serial) because chip fabrication ran
        // serially on the coordinator while only measurement fanned out.
        // Fabrication now runs inside the per-chip workers (the stream's
        // counter-derived RNG schedule makes that safe), so the 2-thread
        // row must stay within noise of the 1-thread row.
        ("campaign_small_threads1", "campaign_small_threads2", 1.15),
        (
            "table3_region_cell_threads1",
            "table3_region_cell_threads2",
            1.8,
        ),
    ];
    for (serial_id, t2_id, max_ratio) in checks {
        let (Some(serial), Some(t2)) = (min_of(serial_id), min_of(t2_id)) else {
            continue;
        };
        if serial == 0 {
            continue;
        }
        let ratio = t2 as f64 / serial as f64;
        if ratio > max_ratio {
            die(&format!(
                "{t2_id} min {t2} ns is {ratio:.2}x {serial_id} min {serial} ns \
                 (limit {max_ratio}x): serial fallback thresholds regressed"
            ));
        }
        eprintln!("thread2 sanity: {t2_id}/{serial_id} = {ratio:.2}x (limit {max_ratio}x)");
    }
}

/// Bench-binary failure exit without panic machinery (keeps the
/// `vmin-lint` panic ratchet flat).
fn die(msg: &str) -> ! {
    eprintln!("[par_speedup] fatal: {msg}");
    std::process::exit(1)
}

criterion_group!(
    benches,
    bench_par_speedup,
    bench_fit_cache,
    bench_fit_hist,
    assert_small_input_thread2_sanity,
);
criterion_main!(benches);
