//! Criterion micro-benchmarks: fit and predict latency of every model
//! family at the paper's data scale (117 training chips after one CV fold,
//! 10 CFS features for the CFS models, wide raw features for the trees).

use vmin_bench::harness::{BatchSize, Criterion};
use vmin_bench::{criterion_group, criterion_main};
use vmin_linalg::Matrix;
use vmin_models::{
    GaussianProcess, GradientBoost, LinearRegression, Loss, NeuralNet, NeuralNetParams,
    ObliviousBoost, QuantileLinear, Regressor,
};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;

/// Synthetic regression data shaped like a CV fold of the paper's dataset.
fn make_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let signal: f64 = row.iter().take(4).sum::<f64>() * 10.0;
        rows.push(row);
        y.push(550.0 + signal + rng.gen_range(-3.0..3.0));
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_fits(c: &mut Criterion) {
    let (x10, y10) = make_data(117, 10, 1);
    let (x_wide, y_wide) = make_data(117, 300, 2);

    let mut group = c.benchmark_group("fit");
    group.sample_size(10);

    group.bench_function("linear_ols_10f", |b| {
        b.iter_batched(
            LinearRegression::new,
            |mut m| m.fit(&x10, &y10).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("quantile_linear_10f", |b| {
        b.iter_batched(
            || QuantileLinear::new(0.95).with_training(400, 0.02),
            |mut m| m.fit(&x10, &y10).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("gp_10f", |b| {
        b.iter_batched(
            GaussianProcess::new,
            |mut m| m.fit(&x10, &y10).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("gbt_100trees_300f", |b| {
        b.iter_batched(
            || GradientBoost::new(Loss::Squared),
            |mut m| m.fit(&x_wide, &y_wide).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("oblivious_100trees_300f", |b| {
        b.iter_batched(
            || ObliviousBoost::new(Loss::Squared),
            |mut m| m.fit(&x_wide, &y_wide).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("nn_500epochs_10f", |b| {
        b.iter_batched(
            || {
                NeuralNet::with_params(
                    Loss::Squared,
                    NeuralNetParams {
                        epochs: 500,
                        ..NeuralNetParams::default()
                    },
                )
            },
            |mut m| m.fit(&x10, &y10).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("predict");
    let mut gbt = GradientBoost::new(Loss::Squared);
    gbt.fit(&x_wide, &y_wide).unwrap();
    group.bench_function("gbt_batch_117", |b| {
        b.iter(|| gbt.predict(&x_wide).unwrap())
    });
    let mut gp = GaussianProcess::new();
    gp.fit(&x10, &y10).unwrap();
    group.bench_function("gp_with_std_single", |b| {
        b.iter(|| gp.predict_with_std(x10.row(0)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fits);
criterion_main!(benches);
