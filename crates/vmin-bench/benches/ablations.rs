//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - **A1 — calibration fraction**: how the CQR train/calibration split
//!   (paper: 75/25) trades interval width against quantile-model quality.
//! - **A2 — conformal variants**: split CP vs normalized CP vs CQR vs
//!   jackknife+ around linear models on the same heteroscedastic data.
//!
//! Criterion measures the runtime of each variant; the quality numbers
//! (mean length / coverage) are printed once to stderr at startup so the
//! bench output doubles as the ablation table.

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_conformal::{
    evaluate_intervals, Cqr, JackknifePlus, NormalizedConformal, PredictionInterval, SplitConformal,
};
use vmin_data::train_test_split;
use vmin_linalg::Matrix;
use vmin_models::{LinearRegression, QuantileLinear, Regressor};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;

/// Heteroscedastic synthetic data mimicking the Vmin residual structure.
fn hetero(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen_range(0.0..4.0);
        rows.push(vec![x]);
        y.push(550.0 + 10.0 * x + (2.0 + 3.0 * x) * rng.gen_range(-1.0..1.0));
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn qlin(q: f64) -> QuantileLinear {
    QuantileLinear::new(q).with_training(400, 0.02)
}

fn run_cqr(cal_fraction: f64, seed: u64) -> (f64, f64) {
    let (x, y) = hetero(117, seed);
    let (x_te, y_te) = hetero(60, seed + 1000);
    let ds_split = train_test_split(x.rows(), 1.0 - cal_fraction, seed);
    let x_tr = x.select_rows(&ds_split.train).unwrap();
    let y_tr: Vec<f64> = ds_split.train.iter().map(|&i| y[i]).collect();
    let x_ca = x.select_rows(&ds_split.test).unwrap();
    let y_ca: Vec<f64> = ds_split.test.iter().map(|&i| y[i]).collect();
    let mut cqr = Cqr::new(qlin(0.05), qlin(0.95), 0.1);
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let ivs = cqr.predict_intervals(&x_te).unwrap();
    let rep = evaluate_intervals(&ivs, &y_te);
    (rep.mean_length, rep.coverage)
}

/// A1: calibration-fraction sweep (quality table printed to stderr).
fn print_a1_table() {
    eprintln!("\n[A1] CQR calibration-fraction sweep (α = 0.1, linear base, 117 chips):");
    eprintln!("{:>10} {:>12} {:>10}", "cal frac", "length", "coverage");
    for frac in [0.10, 0.15, 0.25, 0.35, 0.50] {
        let (mut len, mut cov) = (0.0, 0.0);
        let reps = 20;
        for s in 0..reps {
            let (l, c) = run_cqr(frac, s * 7919 + 3);
            len += l;
            cov += c;
        }
        eprintln!(
            "{:>10.2} {:>12.2} {:>9.1}%",
            frac,
            len / reps as f64,
            cov / reps as f64 * 100.0
        );
    }
}

/// A2: conformal-variant quality comparison (printed to stderr).
fn print_a2_table() {
    let reps = 20;
    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    let mut accumulate = |name: &'static str, f: &dyn Fn(u64) -> (f64, f64)| {
        let (mut len, mut cov) = (0.0, 0.0);
        for s in 0..reps {
            let (l, c) = f(s * 6271 + 11);
            len += l;
            cov += c;
        }
        rows.push((name, len / reps as f64, cov / reps as f64));
    };

    accumulate("split CP (constant width)", &|seed| {
        let (x, y) = hetero(117, seed);
        let (x_te, y_te) = hetero(60, seed + 1000);
        let split = train_test_split(x.rows(), 0.75, seed);
        let x_tr = x.select_rows(&split.train).unwrap();
        let y_tr: Vec<f64> = split.train.iter().map(|&i| y[i]).collect();
        let x_ca = x.select_rows(&split.test).unwrap();
        let y_ca: Vec<f64> = split.test.iter().map(|&i| y[i]).collect();
        let mut cp = SplitConformal::new(LinearRegression::new(), 0.1);
        cp.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
        let rep = evaluate_intervals(&cp.predict_intervals(&x_te).unwrap(), &y_te);
        (rep.mean_length, rep.coverage)
    });
    accumulate("normalized CP", &|seed| {
        let (x, y) = hetero(117, seed);
        let (x_te, y_te) = hetero(60, seed + 1000);
        let split = train_test_split(x.rows(), 0.75, seed);
        let x_tr = x.select_rows(&split.train).unwrap();
        let y_tr: Vec<f64> = split.train.iter().map(|&i| y[i]).collect();
        let x_ca = x.select_rows(&split.test).unwrap();
        let y_ca: Vec<f64> = split.test.iter().map(|&i| y[i]).collect();
        let mut ncp =
            NormalizedConformal::new(LinearRegression::new(), LinearRegression::new(), 0.1);
        ncp.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
        let rep = evaluate_intervals(&ncp.predict_intervals(&x_te).unwrap(), &y_te);
        (rep.mean_length, rep.coverage)
    });
    accumulate("CQR (paper)", &|seed| run_cqr(0.25, seed));
    accumulate("jackknife+", &|seed| {
        let (x, y) = hetero(60, seed); // LOO fits: keep n modest
        let (x_te, y_te) = hetero(60, seed + 1000);
        let mut jk = JackknifePlus::new(0.1);
        jk.fit(&x, &y, || {
            Box::new(LinearRegression::new()) as Box<dyn Regressor>
        })
        .unwrap();
        let ivs: Vec<PredictionInterval> = (0..x_te.rows())
            .map(|i| jk.predict_interval(x_te.row(i)).unwrap())
            .collect();
        let rep = evaluate_intervals(&ivs, &y_te);
        (rep.mean_length, rep.coverage)
    });

    eprintln!("\n[A2] conformal variants on heteroscedastic data (α = 0.1):");
    eprintln!("{:<28} {:>10} {:>10}", "variant", "length", "coverage");
    for (name, len, cov) in rows {
        eprintln!("{name:<28} {len:>10.2} {:>9.1}%", cov * 100.0);
    }
    eprintln!();
}

fn bench_ablations(c: &mut Criterion) {
    if c.is_bench_mode() {
        print_a1_table();
        print_a2_table();
    }

    let mut group = c.benchmark_group("ablation_runtime");
    group.sample_size(10);
    group.bench_function("cqr_cal25", |b| b.iter(|| run_cqr(0.25, 1)));
    group.bench_function("cqr_cal50", |b| b.iter(|| run_cqr(0.50, 1)));
    group.bench_function("jackknife_plus_n60", |b| {
        let (x, y) = hetero(60, 3);
        b.iter(|| {
            let mut jk = JackknifePlus::new(0.1);
            jk.fit(&x, &y, || {
                Box::new(LinearRegression::new()) as Box<dyn Regressor>
            })
            .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
