//! Criterion micro-benchmarks for the streaming adaptive layer: the cost of
//! one `observe()` (the per-telemetry-packet overhead a deployed fleet
//! pays), a full nominal stream, and a full stream through a drift fault
//! with window flush and recalibration audit.

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_conformal::{AdaptiveCalibrator, AdaptiveConfig, PredictionInterval};
use vmin_core::{run_stream, StreamConfig};
use vmin_silicon::{Campaign, DatasetSpec, DriftClass, DriftFault, DriftInjector};

/// Deterministic pseudo-noise in (−1, 1) without an RNG dependency.
fn noise(i: usize) -> f64 {
    2.0 * (i as f64 * 0.618_033_988_749_895).fract() - 1.0
}

fn bench_drift_recalibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("drift_recalibration");

    group.bench_function("observe_per_packet", |b| {
        let initial: Vec<f64> = (0..128).map(|i| 0.9 * noise(i).abs() - 1.0).collect();
        let cal = AdaptiveCalibrator::new(&initial, AdaptiveConfig::for_alpha(0.2)).unwrap();
        b.iter(|| {
            let mut cal = cal.clone();
            let mut last = 0.0;
            for i in 0..256 {
                let y = 550.0 + 0.9 * noise(i);
                let obs = cal
                    .observe(PredictionInterval::new(549.0, 551.0), y)
                    .unwrap();
                last = obs.qhat;
            }
            last
        })
    });

    let clean = Campaign::run(&DatasetSpec::small(), 7);
    let (drifted, _) = DriftInjector::new(
        vec![DriftFault {
            class: DriftClass::Ramp,
            onset: 3,
            magnitude_mv: 20.0,
            fraction: 1.0,
        }],
        41,
    )
    .unwrap()
    .inject(&clean);

    group.bench_function("stream_nominal", |b| {
        b.iter(|| run_stream(&clean, &StreamConfig::fast(0.2)).unwrap())
    });

    group.bench_function("stream_ramp_drift", |b| {
        b.iter(|| run_stream(&drifted, &StreamConfig::fast(0.2)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_drift_recalibration);
criterion_main!(benches);
