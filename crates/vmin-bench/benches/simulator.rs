//! Criterion micro-benchmarks: synthetic-silicon substrate throughput —
//! chip fabrication, SCAN Vmin extraction (bisection vs the conventional
//! shmoo flow whose cost motivates ML prediction in §I), and a full small
//! campaign.

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_rng::ChaCha8Rng;
use vmin_rng::SeedableRng;
use vmin_silicon::{Campaign, Celsius, ChipFactory, DatasetSpec, Hours, VminTester};

fn bench_simulator(c: &mut Criterion) {
    let spec = DatasetSpec::small();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let chips = ChipFactory::new(spec.clone()).fabricate(&mut rng);
    let tester = VminTester::calibrated(spec.vmin_test.clone(), &chips[0]);

    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);

    group.bench_function("fabricate_64_chips", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            ChipFactory::new(spec.clone()).fabricate(&mut rng)
        })
    });

    group.bench_function("vmin_bisection", |b| {
        b.iter(|| {
            tester
                .vmin_noiseless(&chips[1], Celsius(25.0), Hours(0.0))
                .unwrap()
        })
    });

    group.bench_function("vmin_shmoo_conventional", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        b.iter(|| {
            tester
                .vmin_shmoo(&mut rng, &chips[1], Celsius(25.0), Hours(0.0))
                .unwrap()
        })
    });

    group.bench_function("campaign_small_full", |b| {
        b.iter(|| Campaign::run(&DatasetSpec::small(), 7))
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
