//! Fleet-scale screening throughput: the end-to-end question PR 10 answers —
//! how many chips per second can the pipeline generate *and* score?
//!
//! Four legs over the same [`DatasetSpec::screening`] fleet and the same
//! fitted CQR pair (paper-default model scale: 100 rounds, depth 6):
//!
//! - `generate_only_c{N}`: drain the [`CampaignStream`] and fold the defect
//!   flags — the synthetic-silicon cost floor.
//! - `serve_only_c{N}`: score a pre-assembled feature matrix with
//!   [`ServeModel::serve_batch`] — the inference cost floor.
//! - `fused_generate_serve_c{N}`: [`fleet_screen`], chunks piped straight
//!   from the stream into the serve kernel, peak memory one chunk.
//! - `materialize_then_serve_c{N}`: the pre-PR path — `Campaign::run` holds
//!   every chip's nested measurement records, `assemble_dataset` copies them
//!   into a matrix, then one big serve.
//!
//! The fused and materialized legs produce identical screening counts (the
//! fleet tests assert bit equality); only time and memory may differ.
//! Chips/sec = N / (min time per iteration); a `chips/sec` summary table is
//! printed after the group in bench mode.
//!
//! Bench mode sweeps 100 000 and 1 000 000 chips so one JSON report carries
//! both scales; `VMIN_BENCH_FLEET` pins a single size instead. Ids embed the
//! size so JSON rows from different scales never collide.
//!
//! Run: `VMIN_BENCH_JSON=BENCH_PR10.json cargo bench -p vmin-bench --bench fleet_throughput`

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_conformal::Cqr;
use vmin_core::{assemble_dataset, fleet_screen, FeatureSet, FleetScreenConfig};
use vmin_linalg::Matrix;
use vmin_models::{GradientBoost, GradientBoostParams, Loss, TreeParams};
use vmin_serve::ServeModel;
use vmin_silicon::{Campaign, CampaignStream, DatasetSpec};

/// Training campaign size for the served model (independent seed).
const N_TRAIN: usize = 512;
const MIN_SPEC_MV: f64 = 700.0;
const FLEET_SEED: u64 = 7;

fn fleet_sizes(bench_mode: bool) -> Vec<usize> {
    match Criterion::fleet_size_override() {
        Some(n) => vec![n],
        // Smoke mode (cargo test builds and runs bench targets once) keeps
        // the fleet small so the target stays fast.
        None if !bench_mode => vec![2_000],
        None => vec![100_000, 1_000_000],
    }
}

/// Fits the production-scale CQR pair on an independent screening campaign.
fn fit_model(train_spec: &DatasetSpec) -> ServeModel {
    let train = Campaign::run(train_spec, 1);
    let ds = assemble_dataset(&train, 0, 0, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble training set: {e}")));
    let params = GradientBoostParams {
        tree: TreeParams {
            max_depth: 6,
            ..TreeParams::default()
        },
        ..GradientBoostParams::default()
    };
    let mut cqr = Cqr::new(
        GradientBoost::with_params(Loss::Pinball(0.05), params),
        GradientBoost::with_params(Loss::Pinball(0.95), params),
        0.1,
    );
    cqr.fit_calibrate(ds.features(), ds.targets(), ds.features(), ds.targets())
        .unwrap_or_else(|e| die(&format!("fit_calibrate: {e}")));
    ServeModel::from_gbt_cqr(&cqr, None).unwrap_or_else(|e| die(&format!("capture: {e}")))
}

/// Streams the fleet once and assembles the serve-only input matrix (the
/// untimed setup for the inference-floor leg).
fn assemble_fleet_matrix(spec: &DatasetSpec, d: usize) -> Matrix {
    let mut data = Vec::with_capacity(spec.chip_count * d);
    for block in CampaignStream::new(spec, FLEET_SEED) {
        for r in 0..block.len() {
            data.extend_from_slice(block.parametric(r));
            data.extend_from_slice(block.rod(r, 0));
            data.extend_from_slice(block.cpd(r, 0));
        }
    }
    Matrix::from_vec(spec.chip_count, d, data)
        .unwrap_or_else(|e| die(&format!("fleet matrix: {e}")))
}

fn bench_fleet(c: &mut Criterion) {
    let sizes = fleet_sizes(c.is_bench_mode());
    // One model for every scale — the feature layout is size-independent.
    let model = fit_model(&DatasetSpec::screening(N_TRAIN));
    for chips in sizes {
        bench_fleet_at(c, chips, &model);
    }
}

fn bench_fleet_at(c: &mut Criterion, chips: usize, model: &ServeModel) {
    let spec = DatasetSpec::screening(chips);
    let cfg = FleetScreenConfig::new(MIN_SPEC_MV);

    let mut group = c.benchmark_group("fleet_throughput");
    group.sample_size(3);

    group.bench_function(&format!("generate_only_c{chips}"), |b| {
        b.iter(|| {
            let mut defects = 0usize;
            for block in CampaignStream::new(&spec, FLEET_SEED) {
                for r in 0..block.len() {
                    defects += usize::from(block.defective(r));
                }
            }
            defects
        })
    });

    let x = assemble_fleet_matrix(&spec, model.n_features());
    group.bench_function(&format!("serve_only_c{chips}"), |b| {
        b.iter(|| {
            model
                .serve_batch(&x, cfg.serve_rows)
                .unwrap_or_else(|e| die(&format!("serve only: {e}")))
        })
    });
    drop(x);

    group.bench_function(&format!("fused_generate_serve_c{chips}"), |b| {
        b.iter(|| {
            fleet_screen(&spec, FLEET_SEED, model, &cfg)
                .unwrap_or_else(|e| die(&format!("fused screen: {e}")))
        })
    });

    group.bench_function(&format!("materialize_then_serve_c{chips}"), |b| {
        b.iter(|| {
            let campaign = Campaign::run(&spec, FLEET_SEED);
            let ds = assemble_dataset(&campaign, 0, 0, FeatureSet::Both)
                .unwrap_or_else(|e| die(&format!("assemble fleet: {e}")));
            let intervals = model
                .serve_batch(ds.features(), cfg.serve_rows)
                .unwrap_or_else(|e| die(&format!("materialized serve: {e}")));
            intervals.iter().filter(|iv| iv.hi() > MIN_SPEC_MV).count()
        })
    });

    group.finish();
    report_chips_per_sec(c, chips);
}

/// Prints a chips/sec table from the recorded minima and the fused-vs-
/// materialized ratio (bench mode only — smoke samples are untrustworthy).
fn report_chips_per_sec(c: &Criterion, chips: usize) {
    if !c.is_bench_mode() {
        return;
    }
    let min_of = |id: String| {
        c.records()
            .iter()
            .find(|r| r.group == "fleet_throughput" && r.id == id)
            .map(|r| r.min_ns)
            .filter(|&ns| ns > 0)
    };
    eprintln!("\nchips/sec at {chips} chips (from min sample):");
    for leg in [
        "generate_only",
        "serve_only",
        "fused_generate_serve",
        "materialize_then_serve",
    ] {
        if let Some(ns) = min_of(format!("{leg}_c{chips}")) {
            eprintln!("  {leg}: {:.0}", chips as f64 * 1e9 / ns as f64);
        }
    }
    if let (Some(fused), Some(mat)) = (
        min_of(format!("fused_generate_serve_c{chips}")),
        min_of(format!("materialize_then_serve_c{chips}")),
    ) {
        eprintln!(
            "  fused/materialized speedup: {:.2}x",
            mat as f64 / fused as f64
        );
    }
}

/// Bench-binary failure exit without panic machinery (keeps the
/// `vmin-lint` panic ratchet flat).
fn die(msg: &str) -> ! {
    eprintln!("[fleet_throughput] fatal: {msg}");
    std::process::exit(1)
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
