//! Criterion micro-benchmarks: conformal calibration and interval
//! prediction cost — the overhead CQR adds on top of quantile regression
//! (Table I claims computational efficiency; this measures it).

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_conformal::{conformal_quantile, Cqr, SplitConformal};
use vmin_linalg::Matrix;
use vmin_models::{LinearRegression, QuantileLinear};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;

fn make_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen_range(0.0..4.0);
        rows.push(vec![x, x * x]);
        y.push(550.0 + 10.0 * x + rng.gen_range(-3.0..3.0));
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_conformal(c: &mut Criterion) {
    let (x_tr, y_tr) = make_data(88, 1);
    let (x_ca, y_ca) = make_data(29, 2);
    let (x_te, _) = make_data(39, 3);

    let mut group = c.benchmark_group("conformal");

    group.bench_function("conformal_quantile_m29", |b| {
        let scores: Vec<f64> = (0..29).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        b.iter(|| conformal_quantile(&scores, 0.1).unwrap())
    });

    group.bench_function("split_cp_recalibrate", |b| {
        let mut cp = SplitConformal::new(LinearRegression::new(), 0.1);
        cp.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
        b.iter(|| {
            let mut cp2 = cp.clone();
            cp2.calibrate(&x_ca, &y_ca).unwrap();
        })
    });

    group.bench_function("cqr_fit_calibrate_linear", |b| {
        b.iter(|| {
            let mut cqr = Cqr::new(
                QuantileLinear::new(0.05).with_training(200, 0.02),
                QuantileLinear::new(0.95).with_training(200, 0.02),
                0.1,
            );
            cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
        })
    });

    group.bench_function("cqr_predict_39_intervals", |b| {
        let mut cqr = Cqr::new(
            QuantileLinear::new(0.05).with_training(200, 0.02),
            QuantileLinear::new(0.95).with_training(200, 0.02),
            0.1,
        );
        cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
        b.iter(|| cqr.predict_intervals(&x_te).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_conformal);
criterion_main!(benches);
