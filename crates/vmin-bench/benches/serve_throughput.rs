//! Serving throughput: flattened batch kernels vs per-chip trait dispatch.
//!
//! The deployment question PR 9 answers: how many chips per second can a
//! production tester score against a fitted CQR pair? Every id serves the
//! *same* fleet batch from the *same* fitted models, single-threaded
//! (`vmin_par::with_threads(1)`), so the `*_trait_dispatch` /
//! `*_flat_batch` pairs isolate exactly the kernel change — the outputs
//! are bit-identical by the serve_equivalence suite, only the time may
//! differ. The acceptance bar for the PR reads BENCH_PR9.json and requires
//! flat-batch GBT throughput ≥ 5× trait dispatch at one thread.
//!
//! Model scale mirrors the paper's production setting (§IV-C2 defaults:
//! 100 rounds, depth 6) with a campaign-sized feature set; the batch is a
//! fleet of [`N_CHIPS`] chips.

use vmin_bench::harness::Criterion;
use vmin_bench::{criterion_group, criterion_main};
use vmin_conformal::Cqr;
use vmin_data::Standardizer;
use vmin_linalg::Matrix;
use vmin_models::{
    GradientBoost, GradientBoostParams, Loss, ObliviousBoost, ObliviousBoostParams, TreeParams,
};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;
use vmin_serve::ServeModel;

/// Fleet size served per iteration — chips/sec = N_CHIPS / (time per iter).
const N_CHIPS: usize = 2000;
const N_FEATURES: usize = 24;
const BLOCK_ROWS: usize = 64;
/// Training-set size: large enough that depth-6 trees actually grow to
/// their full ~64 leaves, as they do on a production recalibration set —
/// tiny training sets yield stub trees that understate serving cost.
const N_TRAIN: usize = 3000;

fn make_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let signal: f64 = row.iter().take(6).sum::<f64>() * 10.0;
        rows.push(row);
        y.push(550.0 + signal + rng.gen_range(-3.0..3.0));
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_serving(c: &mut Criterion) {
    let (x_tr_raw, y_tr) = make_data(N_TRAIN, N_FEATURES, 1);
    let (x_ca_raw, y_ca) = make_data(200, N_FEATURES, 2);
    let (fleet, _) = make_data(N_CHIPS, N_FEATURES, 3);

    // The paper's pipeline standardizes monitor features before the
    // quantile regressors (§III), so both serving paths must carry the
    // standardizer: trait dispatch transforms each chip's row before
    // predicting, the flat path fuses the same transform into its block
    // gather.
    let scaler = Standardizer::fit(&x_tr_raw);
    let x_tr = scaler.transform(&x_tr_raw).unwrap();
    let x_ca = scaler.transform(&x_ca_raw).unwrap();

    // Paper-default model scale (100 rounds, depth 6) for both families.
    let gbt_params = GradientBoostParams {
        tree: TreeParams {
            max_depth: 6,
            ..TreeParams::default()
        },
        ..GradientBoostParams::default()
    };
    let mut gbt_cqr = Cqr::new(
        GradientBoost::with_params(Loss::Pinball(0.05), gbt_params),
        GradientBoost::with_params(Loss::Pinball(0.95), gbt_params),
        0.1,
    );
    gbt_cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let gbt_model = ServeModel::from_gbt_cqr(&gbt_cqr, Some(&scaler)).unwrap();

    let cat_params = ObliviousBoostParams::default();
    let mut cat_cqr = Cqr::new(
        ObliviousBoost::with_params(Loss::Pinball(0.05), cat_params),
        ObliviousBoost::with_params(Loss::Pinball(0.95), cat_params),
        0.1,
    );
    cat_cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let cat_model = ServeModel::from_oblivious_cqr(&cat_cqr, Some(&scaler)).unwrap();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(20);

    // The pre-PR deployment path: standardize one chip, predict one
    // interval, chip by chip.
    group.bench_function("gbt_trait_dispatch", |b| {
        b.iter(|| {
            vmin_par::with_threads(1, || {
                (0..fleet.rows())
                    .map(|i| {
                        let z = scaler.transform_row(fleet.row(i)).unwrap();
                        gbt_cqr.predict_interval(&z).unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        })
    });
    group.bench_function("gbt_flat_batch", |b| {
        b.iter(|| vmin_par::with_threads(1, || gbt_model.serve_batch(&fleet, BLOCK_ROWS).unwrap()))
    });
    group.bench_function("catboost_trait_dispatch", |b| {
        b.iter(|| {
            vmin_par::with_threads(1, || {
                (0..fleet.rows())
                    .map(|i| {
                        let z = scaler.transform_row(fleet.row(i)).unwrap();
                        cat_cqr.predict_interval(&z).unwrap()
                    })
                    .collect::<Vec<_>>()
            })
        })
    });
    group.bench_function("catboost_flat_batch", |b| {
        b.iter(|| vmin_par::with_threads(1, || cat_model.serve_batch(&fleet, BLOCK_ROWS).unwrap()))
    });
    // The parallel leg: same batch, default thread pool.
    group.bench_function("gbt_flat_batch_parallel", |b| {
        b.iter(|| gbt_model.serve_batch(&fleet, BLOCK_ROWS).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
