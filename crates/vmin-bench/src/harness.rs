//! A minimal in-tree micro-benchmark harness.
//!
//! The workspace must build hermetically with no registry access, so the
//! bench targets run on this small criterion-compatible shim instead of the
//! `criterion` crate. It reproduces the slice of the API the benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with `iter`/`iter_batched`,
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with two execution modes:
//!
//! - **bench mode** (`cargo bench`, detected via the `--bench` flag cargo
//!   passes to bench executables): warm up, time `sample_size` iterations
//!   and print min/median/mean per benchmark.
//! - **smoke mode** (everything else, notably `cargo test`, which builds and
//!   runs bench targets): run each routine exactly once so the target is
//!   exercised but stays fast.
//!
//! `VMIN_BENCH_SAMPLES` overrides the per-benchmark sample count.
//!
//! When `VMIN_BENCH_JSON` names a path, the final summary also writes every
//! recorded benchmark (min/median/mean in nanoseconds, sample count) plus
//! the active `vmin-par` thread count to that path as JSON — both in bench
//! mode and in smoke mode, where the single pass is timed as one sample.

// Timing goes through `vmin_trace::clock`, the workspace's sole sanctioned
// wall-clock owner (the `det-wall-clock` lint denies `Instant` elsewhere).
use std::time::Duration;
use vmin_trace::clock;

/// One benchmark's timing summary, kept for the JSON report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Group name passed to [`Criterion::benchmark_group`].
    pub group: String,
    /// Benchmark id passed to `bench_function`.
    pub id: String,
    /// Number of timed samples behind the statistics.
    pub samples: usize,
    /// Fastest sample, in nanoseconds.
    pub min_ns: u128,
    /// Median sample, in nanoseconds.
    pub median_ns: u128,
    /// Mean sample, in nanoseconds.
    pub mean_ns: u128,
}

/// How batched inputs are grouped between setup calls. Only a namespace
/// shim — every variant times one routine call per setup call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Top-level harness state: execution mode plus a counter for the final
/// summary line.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
    default_samples: usize,
    // Set when VMIN_BENCH_SAMPLES is present: the env override beats even
    // explicit `sample_size()` calls, so CI can cap every benchmark at once.
    samples_forced: bool,
    completed: usize,
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Builds the harness from the process arguments: full timing when
    /// cargo passed `--bench`, single-pass smoke mode otherwise.
    pub fn default_from_args() -> Criterion {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let env_samples = vmin_trace::env_usize("VMIN_BENCH_SAMPLES").filter(|&n| n > 0);
        Criterion {
            bench_mode,
            default_samples: env_samples.unwrap_or(20),
            samples_forced: env_samples.is_some(),
            completed: 0,
            records: Vec::new(),
        }
    }

    /// True when the process was launched by `cargo bench` (full timing);
    /// false in smoke mode. Lets bench mains skip expensive side tables
    /// when they are only being smoke-run by `cargo test`.
    pub fn is_bench_mode(&self) -> bool {
        self.bench_mode
    }

    /// `VMIN_BENCH_FLEET` override: pins the fleet-scale benches to a single
    /// fleet size instead of their built-in sweep (zero and unset both mean
    /// "no override"). Lives on the harness so the knob is registered and
    /// parsed in library code like the other `VMIN_BENCH_*` vars.
    pub fn fleet_size_override() -> Option<usize> {
        vmin_trace::env_usize("VMIN_BENCH_FLEET").filter(|&n| n > 0)
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if self.bench_mode {
            eprintln!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the run summary and, when `VMIN_BENCH_JSON` names a path,
    /// writes the JSON timing report there.
    pub fn final_summary(&self) {
        if self.bench_mode {
            eprintln!("\n{} benchmarks timed.", self.completed);
        } else {
            eprintln!(
                "{} benchmarks smoke-tested (pass --bench to time).",
                self.completed
            );
        }
        if let Some(path) = std::env::var_os("VMIN_BENCH_JSON") {
            match std::fs::write(&path, self.json_report()) {
                Ok(()) => eprintln!("timing report written to {}", path.to_string_lossy()),
                Err(e) => eprintln!(
                    "failed to write timing report to {}: {e}",
                    path.to_string_lossy()
                ),
            }
        }
        // Metrics accumulated while the benchmarks ran; written only when
        // `VMIN_TRACE_JSON` names a path.
        let _ = vmin_trace::export::write_json_if_configured(vmin_par::current_threads());
    }

    /// The recorded per-benchmark summaries, in execution order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Renders the timing report as a JSON document (hand-rolled — the
    /// workspace is dependency-free, so no serde).
    pub fn json_report(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"threads\": {},\n  \"bench_mode\": {},\n",
            vmin_par::current_threads(),
            self.bench_mode
        ));
        s.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"group\": \"{}\", \"id\": \"{}\", \"samples\": {}, \
                 \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{}\n",
                json_escape(&r.group),
                json_escape(&r.id),
                r.samples,
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escapes the characters JSON forbids in strings (the names here are plain
/// identifiers, so this only needs quotes, backslashes and control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A named collection of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark: the closure drives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.criterion.samples_forced {
            self.criterion.default_samples
        } else {
            self.sample_size.unwrap_or(self.criterion.default_samples)
        };
        let mut bencher = Bencher {
            bench_mode: self.criterion.bench_mode,
            samples,
            times: Vec::new(),
        };
        f(&mut bencher);
        if let Some(record) = bencher.summarize(&self.name, id) {
            if self.criterion.bench_mode {
                eprintln!(
                    "{}/{}: min {} · median {} · mean {} ({} samples)",
                    record.group,
                    record.id,
                    fmt_duration(Duration::from_nanos(record.min_ns as u64)),
                    fmt_duration(Duration::from_nanos(record.median_ns as u64)),
                    fmt_duration(Duration::from_nanos(record.mean_ns as u64)),
                    record.samples,
                );
            }
            self.criterion.records.push(record);
        } else if self.criterion.bench_mode {
            eprintln!("{}/{id}: no samples recorded", self.name);
        }
        self.criterion.completed += 1;
        self
    }

    /// Ends the group. (Reporting is per-benchmark; this is API parity.)
    pub fn finish(self) {}
}

/// The per-benchmark timing driver handed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    bench_mode: bool,
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (one warm-up call
    /// first); in smoke mode runs it exactly once, recording that single
    /// pass as the only sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            let t0 = clock::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
            return;
        }
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.samples {
            let t0 = clock::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter`] but with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.bench_mode {
            let input = setup();
            let t0 = clock::now();
            std::hint::black_box(routine(input));
            self.times.push(t0.elapsed());
            return;
        }
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let t0 = clock::now();
            std::hint::black_box(routine(input));
            self.times.push(t0.elapsed());
        }
    }

    fn summarize(&mut self, group: &str, id: &str) -> Option<BenchRecord> {
        if self.times.is_empty() {
            return None;
        }
        self.times.sort_unstable();
        let min = self.times[0];
        let median = self.times[self.times.len() / 2];
        let mean = self.times.iter().sum::<Duration>() / self.times.len() as u32;
        Some(BenchRecord {
            group: group.to_string(),
            id: id.to_string(),
            samples: self.times.len(),
            min_ns: min.as_nanos(),
            median_ns: median.as_nanos(),
            mean_ns: mean.as_nanos(),
        })
    }
}

/// Human-scale duration formatting (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles bench functions into a single group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench target from one or more groups declared
/// with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut calls = 0usize;
        let mut b = Bencher {
            bench_mode: false,
            samples: 10,
            times: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        // The single smoke pass is still timed, so the JSON report has a
        // sample even without --bench.
        assert_eq!(b.times.len(), 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut b = Bencher {
            bench_mode: true,
            samples: 5,
            times: Vec::new(),
        };
        b.iter(|| std::hint::black_box(3 + 4));
        assert_eq!(b.times.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0usize;
        let mut b = Bencher {
            bench_mode: true,
            samples: 4,
            times: Vec::new(),
        };
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        // One warm-up setup plus one per timed sample.
        assert_eq!(setups, 5);
        assert_eq!(b.times.len(), 4);
    }

    #[test]
    fn summarize_orders_statistics() {
        let mut b = Bencher {
            bench_mode: true,
            samples: 3,
            times: vec![
                Duration::from_nanos(30),
                Duration::from_nanos(10),
                Duration::from_nanos(20),
            ],
        };
        let r = b.summarize("g", "id").unwrap();
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.median_ns, 20);
        assert_eq!(r.mean_ns, 20);
        assert_eq!(r.samples, 3);
        let empty = Bencher {
            bench_mode: true,
            samples: 0,
            times: Vec::new(),
        }
        .summarize("g", "id");
        assert!(empty.is_none());
    }

    #[test]
    fn json_report_lists_benchmarks_and_threads() {
        let mut c = Criterion {
            bench_mode: false,
            default_samples: 1,
            samples_forced: false,
            completed: 0,
            records: Vec::new(),
        };
        c.benchmark_group("grp")
            .bench_function("first", |b| b.iter(|| std::hint::black_box(1 + 1)))
            .bench_function("second", |b| b.iter(|| std::hint::black_box(2 + 2)));
        assert_eq!(c.records().len(), 2);
        let json = c.json_report();
        assert!(json.contains("\"threads\":"));
        assert!(json.contains("\"group\": \"grp\""));
        assert!(json.contains("\"id\": \"first\""));
        assert!(json.contains("\"id\": \"second\""));
        assert!(json.contains("\"min_ns\":"));
        // Exactly one trailing comma between the two entries.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
