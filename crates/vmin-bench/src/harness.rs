//! A minimal in-tree micro-benchmark harness.
//!
//! The workspace must build hermetically with no registry access, so the
//! bench targets run on this small criterion-compatible shim instead of the
//! `criterion` crate. It reproduces the slice of the API the benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with `iter`/`iter_batched`,
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with two execution modes:
//!
//! - **bench mode** (`cargo bench`, detected via the `--bench` flag cargo
//!   passes to bench executables): warm up, time `sample_size` iterations
//!   and print min/median/mean per benchmark.
//! - **smoke mode** (everything else, notably `cargo test`, which builds and
//!   runs bench targets): run each routine exactly once so the target is
//!   exercised but stays fast.
//!
//! `VMIN_BENCH_SAMPLES` overrides the per-benchmark sample count.

use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls. Only a namespace
/// shim — every variant times one routine call per setup call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Top-level harness state: execution mode plus a counter for the final
/// summary line.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
    default_samples: usize,
    completed: usize,
}

impl Criterion {
    /// Builds the harness from the process arguments: full timing when
    /// cargo passed `--bench`, single-pass smoke mode otherwise.
    pub fn default_from_args() -> Criterion {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let default_samples = std::env::var("VMIN_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(20);
        Criterion {
            bench_mode,
            default_samples,
            completed: 0,
        }
    }

    /// True when the process was launched by `cargo bench` (full timing);
    /// false in smoke mode. Lets bench mains skip expensive side tables
    /// when they are only being smoke-run by `cargo test`.
    pub fn is_bench_mode(&self) -> bool {
        self.bench_mode
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if self.bench_mode {
            eprintln!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the run summary (bench mode only).
    pub fn final_summary(&self) {
        if self.bench_mode {
            eprintln!("\n{} benchmarks timed.", self.completed);
        } else {
            eprintln!(
                "{} benchmarks smoke-tested (pass --bench to time).",
                self.completed
            );
        }
    }
}

/// A named collection of benchmarks sharing a sample-size override.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark: the closure drives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.default_samples);
        let mut bencher = Bencher {
            bench_mode: self.criterion.bench_mode,
            samples,
            times: Vec::new(),
        };
        f(&mut bencher);
        if self.criterion.bench_mode {
            bencher.report(&self.name, id);
        }
        self.criterion.completed += 1;
        self
    }

    /// Ends the group. (Reporting is per-benchmark; this is API parity.)
    pub fn finish(self) {}
}

/// The per-benchmark timing driver handed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    bench_mode: bool,
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (one warm-up call
    /// first); in smoke mode runs it exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            std::hint::black_box(f());
            return;
        }
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.times.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter`] but with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.bench_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.times.push(t0.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.times.is_empty() {
            eprintln!("{group}/{id}: no samples recorded");
            return;
        }
        self.times.sort_unstable();
        let min = self.times[0];
        let median = self.times[self.times.len() / 2];
        let mean = self.times.iter().sum::<Duration>() / self.times.len() as u32;
        eprintln!(
            "{group}/{id}: min {} · median {} · mean {} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            self.times.len(),
        );
    }
}

/// Human-scale duration formatting (ns/µs/ms/s).
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles bench functions into a single group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::harness::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench target from one or more groups declared
/// with [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::default_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_routine_once() {
        let mut calls = 0usize;
        let mut b = Bencher {
            bench_mode: false,
            samples: 10,
            times: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.times.is_empty());
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut b = Bencher {
            bench_mode: true,
            samples: 5,
            times: Vec::new(),
        };
        b.iter(|| std::hint::black_box(3 + 4));
        assert_eq!(b.times.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0usize;
        let mut b = Bencher {
            bench_mode: true,
            samples: 4,
            times: Vec::new(),
        };
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        // One warm-up setup plus one per timed sample.
        assert_eq!(setups, 5);
        assert_eq!(b.times.len(), 4);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
