//! Prints the bit patterns of every CQR-XGBoost interval for one fixed
//! region cell, so CI can run the binary twice — `VMIN_FITPLAN=0` and
//! `VMIN_FITPLAN=1` — and `diff` the outputs. Any difference means the
//! fit-plan cache changed a result, which violates its exactness contract.
//!
//! The workload intentionally routes through every cached layer: GBT tree
//! fits (sorted-column blocks + scratch reuse), the CQR shared plan across
//! the lo/hi quantile fits, and the CV+ per-fold plans inside the 4-fold
//! protocol.
//!
//! Run: `VMIN_FITPLAN=0 cargo run --release -p vmin-bench --bin fit_cache_smoke`

#![forbid(unsafe_code)]

use vmin_core::{
    assemble_dataset, FeatureSet, ModelConfig, PointModel, RegionMethod, VminPredictor,
};
use vmin_silicon::{Campaign, DatasetSpec};

fn die(msg: &str) -> ! {
    eprintln!("[fit_cache_smoke] fatal: {msg}");
    std::process::exit(1)
}

fn main() {
    eprintln!(
        "[fit_cache_smoke] fit-plan cache {} (VMIN_FITPLAN)",
        if vmin_models::fit_cache_enabled() {
            "enabled"
        } else {
            "disabled"
        }
    );
    let campaign = Campaign::run(&DatasetSpec::small(), 7);
    let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble: {e}")));
    let predictor = VminPredictor::fit(
        &ds,
        RegionMethod::Cqr(PointModel::Xgboost),
        0.1,
        0.25,
        42,
        &ModelConfig::fast(),
    )
    .unwrap_or_else(|e| die(&format!("fit: {e}")));
    for i in 0..ds.n_samples() {
        let iv = predictor
            .interval(ds.sample(i))
            .unwrap_or_else(|e| die(&format!("interval {i}: {e}")));
        println!("{i} {:016x} {:016x}", iv.lo().to_bits(), iv.hi().to_bits());
    }
}
