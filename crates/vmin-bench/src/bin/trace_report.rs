//! Runs a small fixed pipeline end to end and emits the `vmin-trace/v1`
//! metrics report, for CI schema validation and cross-thread-count counter
//! diffing.
//!
//! The workload is deterministic (fixed spec, fixed seeds): one small
//! campaign, one point-prediction cell and one CQR region cell. Every
//! *counter*, *gauge* and *histogram* in the report is therefore identical
//! for any `VMIN_THREADS` value; only *topology* and *timer* entries may
//! differ. `ci.sh` runs this binary at two thread counts and diffs the
//! deterministic sections line by line.
//!
//! Run: `VMIN_TRACE_JSON=trace.json cargo run --release -p vmin-bench --bin trace_report`

#![forbid(unsafe_code)]

use vmin_core::{
    run_point_cell, run_region_cell, ExperimentConfig, FeatureSet, PointModel, RegionMethod,
};
use vmin_silicon::{Campaign, DatasetSpec};

fn main() {
    let spec = DatasetSpec::small();
    let cfg = ExperimentConfig::fast();
    eprintln!(
        "[trace_report] running fixed pipeline: {} chips, threads={}",
        spec.chip_count,
        vmin_par::current_threads()
    );
    let campaign = Campaign::run(&spec, 7);

    match run_point_cell(&campaign, 0, 0, PointModel::Xgboost, FeatureSet::Both, &cfg) {
        Ok(eval) => eprintln!(
            "[trace_report] point cell: r2 {:.3}, rmse {:.2}",
            eval.r2, eval.rmse
        ),
        Err(e) => {
            eprintln!("[trace_report] point cell failed: {e}");
            std::process::exit(1);
        }
    }
    match run_region_cell(
        &campaign,
        0,
        1,
        RegionMethod::Cqr(PointModel::Xgboost),
        FeatureSet::Both,
        &cfg,
    ) {
        Ok(eval) => eprintln!(
            "[trace_report] region cell: coverage {:.3}, length {:.2} mV",
            eval.coverage, eval.mean_length
        ),
        Err(e) => {
            eprintln!("[trace_report] region cell failed: {e}");
            std::process::exit(1);
        }
    }

    match vmin_trace::export::write_json_if_configured(vmin_par::current_threads()) {
        Some(path) => eprintln!("[trace_report] report at {}", path.display()),
        None => {
            // No sink configured: print the report so the binary is useful
            // standalone.
            let snap = vmin_trace::snapshot();
            print!(
                "{}",
                vmin_trace::export::render_json(
                    &snap,
                    vmin_par::current_threads(),
                    vmin_trace::enabled()
                )
            );
        }
    }
}
