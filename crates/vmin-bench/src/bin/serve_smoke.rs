//! Smoke binary for the serving layer, mirroring `hist_smoke`:
//!
//! - **stdout**: the served interval bit patterns for a deterministic
//!   campaign-scale batch, one `lo hi` hex pair per chip. `ci.sh` diffs
//!   this output across `VMIN_THREADS` values and `VMIN_SERVE` on/off —
//!   all four must be *byte-identical* (the kill switch is pure path
//!   selection), and the run also writes an artifact file whose first
//!   line must grep as `vmin-artifact/v1`.
//! - **stderr**: in-process self-checks (artifact round-trip identity,
//!   live-vs-served bit equality, serve counters present when tracing).
//!
//! Usage: `serve_smoke <artifact-path>` — writes the artifact there.

#![forbid(unsafe_code)]

use std::process::exit;
use vmin_conformal::Cqr;
use vmin_linalg::Matrix;
use vmin_models::{GradientBoost, GradientBoostParams, Loss, TreeParams};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;
use vmin_serve::ServeModel;

fn die(msg: &str) -> ! {
    eprintln!("serve_smoke: FAIL: {msg}");
    exit(1);
}

fn draw(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..4.0)).collect();
        let signal = row.iter().sum::<f64>() * 3.0 + (row[0] * 0.9).sin();
        rows.push(row);
        y.push(signal + rng.gen_range(-1.0..1.0));
    }
    match Matrix::from_rows(&rows) {
        Ok(m) => (m, y),
        Err(e) => die(&format!("building the draw matrix: {e}")),
    }
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| die("usage: serve_smoke <artifact-path>"));

    let (x_tr, y_tr) = draw(120, 4, 1);
    let (x_ca, y_ca) = draw(60, 4, 2);
    let (x_te, _) = draw(200, 4, 3);
    let params = GradientBoostParams {
        n_rounds: 30,
        tree: TreeParams {
            max_depth: 4,
            ..TreeParams::default()
        },
        ..GradientBoostParams::default()
    };
    let mut cqr = Cqr::new(
        GradientBoost::with_params(Loss::Pinball(0.05), params),
        GradientBoost::with_params(Loss::Pinball(0.95), params),
        0.1,
    );
    if let Err(e) = cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca) {
        die(&format!("fit_calibrate: {e}"));
    }

    let model = match ServeModel::from_gbt_cqr(&cqr, None) {
        Ok(m) => m,
        Err(e) => die(&format!("capture: {e}")),
    };
    let bytes = model.to_bytes();
    if let Err(e) = std::fs::write(&path, &bytes) {
        die(&format!("writing {path}: {e}"));
    }
    let reloaded = match ServeModel::from_bytes(&bytes) {
        Ok(m) => m,
        Err(e) => die(&format!("reload: {e}")),
    };
    if reloaded.to_bytes() != bytes {
        die("save→load→save is not byte-identical");
    }

    let served = match reloaded.serve_batch(&x_te, 32) {
        Ok(s) => s,
        Err(e) => die(&format!("serve_batch: {e}")),
    };
    for (i, iv) in served.iter().enumerate() {
        let live = match cqr.predict_interval(x_te.row(i)) {
            Ok(iv) => iv,
            Err(e) => die(&format!("live predict row {i}: {e}")),
        };
        if iv.lo().to_bits() != live.lo().to_bits() || iv.hi().to_bits() != live.hi().to_bits() {
            die(&format!("served bits diverged from live path at row {i}"));
        }
        println!("{:016x} {:016x}", iv.lo().to_bits(), iv.hi().to_bits());
    }

    eprintln!(
        "serve_smoke: OK ({} chips, {} artifact bytes, threads={}, serve={})",
        served.len(),
        bytes.len(),
        vmin_par::current_threads(),
        vmin_serve::serve_enabled(),
    );
    vmin_trace::export::write_json_if_configured(vmin_par::current_threads());
}
