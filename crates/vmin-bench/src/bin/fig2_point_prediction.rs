//! Regenerates **Fig. 2**: R² (and RMSE) of SCAN Vmin point prediction for
//! the five regressors — LR, GP, XGBoost, CatBoost, NN — at every stress
//! read point and test temperature, under the §IV-B protocol (4-fold CV,
//! CFS 1..=10 for LR/GP/NN with best-test-score reporting).
//!
//! Shape expectations vs. the paper (§IV-D):
//! - all non-GP models land RMSE in the few-mV range; GP is the laggard;
//! - linear regression is competitive everywhere;
//! - no single winner across degradation cells;
//! - R² does not collapse from 0 h to 1008 h (monitors carry the signal).
//!
//! Run: `cargo run --release -p vmin-bench --bin fig2_point_prediction [--scale quick|medium|full]`

#![forbid(unsafe_code)]

use vmin_bench::Scale;
use vmin_core::{assemble_dataset, format_point_table, run_point_cell_on, FeatureSet, PointModel};
use vmin_silicon::Campaign;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.dataset_spec();
    let cfg = scale.experiment_config();
    eprintln!(
        "[fig2] scale {scale:?}: simulating {} chips…",
        spec.chip_count
    );
    let campaign = Campaign::run(&spec, Scale::CAMPAIGN_SEED);

    let models = PointModel::ALL;
    let mut grand: Vec<(PointModel, f64)> = models.iter().map(|&m| (m, 0.0)).collect();
    let mut r2_by_rp: Vec<f64> = Vec::new(); // LR mean R² per read point

    for rp in 0..campaign.read_points.len() {
        // One assembled dataset per (read point, temperature) cell, shared
        // by the five-model sweep — the feature matrix is identical for all.
        let datasets: Vec<_> = (0..campaign.temperatures.len())
            .map(|temp_idx| {
                assemble_dataset(&campaign, rp, temp_idx, FeatureSet::Both).unwrap_or_else(|e| {
                    eprintln!("[fig2] assemble rp={rp} t={temp_idx}: {e}");
                    std::process::exit(1)
                })
            })
            .collect();
        let mut results = Vec::new();
        for (mi, &model) in models.iter().enumerate() {
            let mut row = Vec::new();
            for (temp_idx, ds) in datasets.iter().enumerate() {
                let eval = run_point_cell_on(ds, model, &cfg)
                    .unwrap_or_else(|e| panic!("cell rp={rp} t={temp_idx} {model}: {e}"));
                grand[mi].1 += eval.r2;
                row.push(eval);
            }
            eprintln!(
                "[fig2] rp {} ({}) {model}: done",
                rp, campaign.read_points[rp]
            );
            results.push(row);
        }
        r2_by_rp.push(results[0].iter().map(|e| e.r2).sum::<f64>() / 3.0);
        println!("{}", format_point_table(&campaign, rp, &models, &results));
    }

    let cells = (campaign.read_points.len() * campaign.temperatures.len()) as f64;
    println!("Mean R² across all 18 cells:");
    for (model, sum) in &grand {
        println!("  {:<20} {:.3}", model.to_string(), sum / cells);
    }
    println!(
        "\nLR mean R² at 0 h = {:.3} vs 1008 h = {:.3} (paper: no clear reduction)",
        r2_by_rp.first().copied().unwrap_or(f64::NAN),
        r2_by_rp.last().copied().unwrap_or(f64::NAN)
    );
}
