//! Prints the bit patterns of every CQR interval for one fixed region
//! cell — once per GBT-family booster — under the *ambient* histogram
//! switch, so CI can run the binary under `VMIN_HIST=1` at two thread
//! counts and `diff` the outputs (the binned path must be bit-identical
//! across `VMIN_THREADS`), then once under `VMIN_HIST=0` and require a
//! difference (a kill switch wired to nothing would pass the invariance
//! checks vacuously).
//!
//! Unlike `fit_cache_smoke`, equality across the flag is *not* the
//! contract here: histogram-binned split finding is an approximation, so
//! hist-on and hist-off intervals are expected to differ in bits while
//! staying close in value. As a self-check the binary also refits the
//! CatBoost cell with the switch pinned both ways in-process and reports
//! the mean absolute interval-edge gap on stderr, failing if the two
//! paths drift apart by more than a few mV — a broken-kernel tripwire on
//! the ~600 mV Vmin scale, not an exactness bound.
//!
//! Run: `VMIN_HIST=1 cargo run --release -p vmin-bench --bin hist_smoke`

#![forbid(unsafe_code)]

use vmin_core::{
    assemble_dataset, FeatureSet, ModelConfig, PointModel, RegionMethod, VminPredictor,
};
use vmin_data::Dataset;
use vmin_silicon::{Campaign, DatasetSpec};

fn die(msg: &str) -> ! {
    eprintln!("[hist_smoke] fatal: {msg}");
    std::process::exit(1)
}

/// Fits one CQR cell and returns every interval as `(lo, hi)`.
fn cell_intervals(ds: &Dataset, model: PointModel) -> Vec<(f64, f64)> {
    let predictor = VminPredictor::fit(
        ds,
        RegionMethod::Cqr(model),
        0.1,
        0.25,
        42,
        &ModelConfig::fast(),
    )
    .unwrap_or_else(|e| die(&format!("fit {model:?}: {e}")));
    (0..ds.n_samples())
        .map(|i| {
            let iv = predictor
                .interval(ds.sample(i))
                .unwrap_or_else(|e| die(&format!("interval {model:?} {i}: {e}")));
            (iv.lo(), iv.hi())
        })
        .collect()
}

fn main() {
    eprintln!(
        "[hist_smoke] histogram splits {} (VMIN_HIST)",
        if vmin_models::hist_enabled() {
            "enabled"
        } else {
            "disabled"
        }
    );
    let campaign = Campaign::run(&DatasetSpec::small(), 7);
    let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble: {e}")));

    // Stdout: ambient-flag interval bits for both boosters — this is what
    // CI diffs across thread counts and across the kill switch.
    for model in [PointModel::Xgboost, PointModel::CatBoost] {
        for (i, (lo, hi)) in cell_intervals(&ds, model).iter().enumerate() {
            println!("{model:?} {i} {:016x} {:016x}", lo.to_bits(), hi.to_bits());
        }
    }

    // Stderr: in-process exact-vs-binned drift summary on the CatBoost
    // cell (the tentpole's headline booster). Both paths score the same
    // 32-border candidate set, so drift comes only from float-association
    // argmax flips on near-tied splits — sub-mV on the ~600 mV Vmin
    // scale. The bound is a broken-kernel tripwire (a real scoring bug
    // shifts edges by the interval scale, tens of mV), not an exactness
    // check: interval *quality* is enforced statistically by
    // `tests/hist_quality.rs`.
    let binned = vmin_models::with_histograms(true, || cell_intervals(&ds, PointModel::CatBoost));
    let exact = vmin_models::with_histograms(false, || cell_intervals(&ds, PointModel::CatBoost));
    if binned.len() != exact.len() || binned.is_empty() {
        die("exact/binned interval counts diverged");
    }
    let mut gap = 0.0f64;
    for ((bl, bh), (el, eh)) in binned.iter().zip(&exact) {
        gap += (bl - el).abs() + (bh - eh).abs();
    }
    let mean_gap = gap / (2.0 * binned.len() as f64);
    eprintln!("[hist_smoke] mean |binned - exact| interval edge gap: {mean_gap:.6} mV");
    if !mean_gap.is_finite() || mean_gap > 5.0 {
        die(&format!(
            "binned intervals drifted {mean_gap:.6} mV from exact (limit 5 mV)"
        ));
    }

    // Metrics accumulated above (models.hist.* counters and spans);
    // written only when `VMIN_TRACE_JSON` names a path.
    if let Some(path) = vmin_trace::export::write_json_if_configured(vmin_par::current_threads()) {
        eprintln!("[hist_smoke] trace report written to {}", path.display());
    }
}
