//! Prints the bit patterns of the per-read-point streaming report for one
//! fixed drifted campaign, so CI can run the binary under `VMIN_THREADS=1`
//! and `VMIN_THREADS=8` and `diff` the outputs (the stream must be
//! bit-identical under any thread count), and under `VMIN_ADAPTIVE=0` vs
//! `=1` to check the kill switch actually changes behavior on a drifting
//! stream.
//!
//! With the adaptive layer disabled the binary additionally self-checks the
//! degradation contract: the adaptive tally must equal the frozen static
//! tally at every read point, with nothing rejected.
//!
//! Run: `VMIN_ADAPTIVE=1 cargo run --release -p vmin-bench --bin drift_smoke`

#![forbid(unsafe_code)]

use vmin_core::{run_stream, StreamConfig};
use vmin_silicon::{Campaign, DatasetSpec, DriftClass, DriftFault, DriftInjector};

fn die(msg: &str) -> ! {
    eprintln!("[drift_smoke] fatal: {msg}");
    std::process::exit(1)
}

fn main() {
    let adaptive_on = vmin_conformal::adaptive_enabled();
    eprintln!(
        "[drift_smoke] adaptive conformal layer {} (VMIN_ADAPTIVE), {} thread(s)",
        if adaptive_on { "enabled" } else { "disabled" },
        vmin_par::current_threads(),
    );
    let clean = Campaign::run(&DatasetSpec::small(), 7);
    let injector = DriftInjector::new(
        vec![DriftFault {
            class: DriftClass::Ramp,
            onset: 3,
            // 30 mV/read-point: strong enough that the adaptive layer reaches a
            // window rebuild on this campaign (ci.sh greps the trace for the
            // conformal.adaptive.recalibrations counter).
            magnitude_mv: 30.0,
            fraction: 1.0,
        }],
        41,
    )
    .unwrap_or_else(|e| die(&format!("injector: {e}")));
    let (drifted, ledger) = injector.inject(&clean);
    eprintln!(
        "[drift_smoke] injected {} ramp faults at read point 3",
        ledger.total()
    );

    let report = run_stream(&drifted, &StreamConfig::fast(0.2))
        .unwrap_or_else(|e| die(&format!("stream: {e}")));

    for s in &report.per_read_point {
        println!(
            "rp {} n {} issued {} covered {} static {} rejected {} finite {} width {:016x} alpha {:016x} state {}",
            s.read_point,
            s.n,
            s.issued,
            s.covered,
            s.static_covered,
            s.rejected,
            s.finite,
            s.mean_finite_width.to_bits(),
            s.mean_alpha.to_bits(),
            s.end_state,
        );
    }
    println!(
        "final {} worst {} transitions {} static_qhat {:016x} alpha_final {:016x}",
        report.final_state,
        report.worst_state,
        report.transitions.len(),
        report.static_qhat.to_bits(),
        report.alpha_final.to_bits(),
    );

    if !adaptive_on {
        // Kill-switch contract: frozen static behavior, bit for bit.
        for s in &report.per_read_point {
            if s.covered != s.static_covered || s.rejected != 0 {
                die(&format!(
                    "VMIN_ADAPTIVE=0 did not degrade to static CQR at read point {}: \
                     adaptive {} vs static {} (rejected {})",
                    s.read_point, s.covered, s.static_covered, s.rejected
                ));
            }
        }
        if !report.transitions.is_empty() {
            die("VMIN_ADAPTIVE=0 still moved the degradation ladder");
        }
    } else if report.worst_state == vmin_conformal::LadderState::Nominal {
        die("a fleet-wide 30 mV/read-point ramp never moved the ladder");
    }

    if let Some(path) = vmin_trace::export::write_json_if_configured(vmin_par::current_threads()) {
        eprintln!("[drift_smoke] trace report written to {}", path.display());
    }
}
