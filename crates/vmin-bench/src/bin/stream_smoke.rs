//! Smoke binary for the streaming campaign engine, mirroring `serve_smoke`:
//!
//! - **stdout**: one FNV-1a digest per streamed chip row (hex), followed by
//!   a single `report ...` line with the fused screening counts and the
//!   mean-interval bit pattern. `ci.sh` diffs this output across
//!   `VMIN_THREADS` values, `VMIN_STREAM_CHUNK` sizes and `VMIN_STREAM`
//!   on/off — every combination must be *byte-identical* (the stream's
//!   counter-derived RNG schedule makes chunking and threading invisible,
//!   and the kill switch is pure path selection).
//! - **stderr**: in-process self-checks (stream-vs-monolithic bit identity,
//!   fused-vs-materialized screening report equality).
//!
//! Usage: `stream_smoke` — knobs are ambient (`VMIN_STREAM`,
//! `VMIN_STREAM_CHUNK`, `VMIN_THREADS`, `VMIN_TRACE`/`VMIN_TRACE_JSON`).

#![forbid(unsafe_code)]

use std::process::exit;
use vmin_conformal::Cqr;
use vmin_core::{assemble_dataset, fleet_screen, FeatureSet, FleetScreenConfig};
use vmin_models::{GradientBoost, GradientBoostParams, Loss, TreeParams};
use vmin_serve::ServeModel;
use vmin_silicon::{Campaign, CampaignStream, DatasetSpec};

const CHIPS: usize = 96;
const SEED: u64 = 20260807;
const MIN_SPEC_MV: f64 = 700.0;

fn die(msg: &str) -> ! {
    eprintln!("stream_smoke: FAIL: {msg}");
    exit(1);
}

/// FNV-1a over a row's f64 bit patterns — a stable per-chip fingerprint.
fn fnv1a(row: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in row {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn main() {
    let spec = DatasetSpec::screening(CHIPS);

    // 1. Stream the fleet and fingerprint every chip row on stdout.
    let stream = CampaignStream::new(&spec, SEED);
    let fallback = stream.is_fallback();
    let mut streamed = Vec::with_capacity(CHIPS);
    for block in stream {
        for r in 0..block.len() {
            println!("{:016x}", fnv1a(block.row(r)));
            streamed.push(block.to_measurements(r));
        }
    }
    if streamed.len() != CHIPS {
        die(&format!("streamed {} of {CHIPS} chips", streamed.len()));
    }

    // 2. Self-check: the stream must reproduce the monolithic campaign bit
    //    for bit, whatever the ambient chunk/thread/kill-switch setting.
    let mono = Campaign::run(&spec, SEED);
    for (s, m) in streamed.iter().zip(&mono.chips) {
        let same = s.chip_id == m.chip_id
            && s.defective == m.defective
            && s.parametric
                .iter()
                .zip(&m.parametric)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && s.vmin_mv[0][0].to_bits() == m.vmin_mv[0][0].to_bits();
        if !same {
            die(&format!(
                "stream diverged from Campaign::run at chip {}",
                m.chip_id
            ));
        }
    }

    // 3. Fit a quick CQR pair on an independent campaign and screen the
    //    fleet fused; the report must equal the materialized path.
    let train = Campaign::run(&spec, SEED + 1);
    let ds = assemble_dataset(&train, 0, 0, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble training set: {e}")));
    let params = GradientBoostParams {
        n_rounds: 30,
        tree: TreeParams {
            max_depth: 4,
            ..TreeParams::default()
        },
        ..GradientBoostParams::default()
    };
    let mut cqr = Cqr::new(
        GradientBoost::with_params(Loss::Pinball(0.05), params),
        GradientBoost::with_params(Loss::Pinball(0.95), params),
        0.1,
    );
    cqr.fit_calibrate(ds.features(), ds.targets(), ds.features(), ds.targets())
        .unwrap_or_else(|e| die(&format!("fit_calibrate: {e}")));
    let model =
        ServeModel::from_gbt_cqr(&cqr, None).unwrap_or_else(|e| die(&format!("capture: {e}")));

    let cfg = FleetScreenConfig::new(MIN_SPEC_MV);
    let report = fleet_screen(&spec, SEED, &model, &cfg)
        .unwrap_or_else(|e| die(&format!("fleet_screen: {e}")));
    if report.chips != CHIPS {
        die(&format!(
            "fused screen saw {} of {CHIPS} chips",
            report.chips
        ));
    }

    // Materialized reference: serve the assembled matrix in one shot.
    let test_ds = assemble_dataset(&mono, 0, 0, FeatureSet::Both)
        .unwrap_or_else(|e| die(&format!("assemble test set: {e}")));
    let intervals = model
        .serve_batch(test_ds.features(), cfg.serve_rows)
        .unwrap_or_else(|e| die(&format!("materialized serve: {e}")));
    let (mut flagged, mut covered) = (0usize, 0usize);
    let mut length_sum = 0.0;
    for (chip, iv) in mono.chips.iter().zip(&intervals) {
        if iv.hi() > MIN_SPEC_MV {
            flagged += 1;
        }
        let truth = chip.vmin_mv[0][0];
        if iv.lo() <= truth && truth <= iv.hi() {
            covered += 1;
        }
        length_sum += iv.length();
    }
    if report.flagged != flagged || report.covered != covered {
        die(&format!(
            "fused report (flagged {}, covered {}) != materialized ({flagged}, {covered})",
            report.flagged, report.covered
        ));
    }
    let mean_ref = length_sum / CHIPS as f64;
    if report.mean_length_mv.to_bits() != mean_ref.to_bits() {
        die("fused mean interval length diverged from the materialized path");
    }

    println!(
        "report chips={} flagged={} covered={} defective={} mean={:016x}",
        report.chips,
        report.flagged,
        report.covered,
        report.defective,
        report.mean_length_mv.to_bits()
    );

    eprintln!(
        "stream_smoke: OK ({CHIPS} chips, threads={}, stream={}, fallback={fallback})",
        vmin_par::current_threads(),
        vmin_silicon::stream_enabled(),
    );
    vmin_trace::export::write_json_if_configured(vmin_par::current_threads());
}
