//! Regenerates **Table III**: average interval length (mV) and coverage (%)
//! of SCAN Vmin prediction intervals for the nine region predictors — GP,
//! QR×{LR, NN, XGBoost, CatBoost}, CQR×{same} — at α = 0.1 across all six
//! stress read points and three temperatures.
//!
//! Shape expectations vs. the paper (§IV-F):
//! - GP and all QR variants under-cover (< 90%) on test folds;
//! - QR CatBoost collapses to near-zero-width intervals with very low
//!   coverage;
//! - every CQR variant restores ≈ 90% coverage;
//! - CQR CatBoost attains the shortest intervals among the CQR family.
//!
//! Run: `cargo run --release -p vmin-bench --bin table3_region_prediction [--scale quick|medium|full]`

#![forbid(unsafe_code)]

use vmin_bench::Scale;
use vmin_core::{
    assemble_dataset, format_region_table, run_region_cell_on, FeatureSet, RegionEval, RegionMethod,
};
use vmin_silicon::Campaign;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.dataset_spec();
    let cfg = scale.experiment_config();
    eprintln!(
        "[table3] scale {scale:?}: simulating {} chips…",
        spec.chip_count
    );
    let campaign = Campaign::run(&spec, Scale::CAMPAIGN_SEED);

    let methods = RegionMethod::ALL;
    // Accumulate per-method summaries across every cell for the wrap-up.
    let mut totals: Vec<(RegionMethod, f64, f64)> =
        methods.iter().map(|&m| (m, 0.0, 0.0)).collect();

    for rp in 0..campaign.read_points.len() {
        // All nine methods score the identical feature matrix per cell:
        // assemble each (read point, temperature) dataset once and share it
        // across the method sweep (scores are unchanged — see
        // `run_region_cell_on`).
        let datasets: Vec<_> = (0..campaign.temperatures.len())
            .map(|temp_idx| {
                assemble_dataset(&campaign, rp, temp_idx, FeatureSet::Both).unwrap_or_else(|e| {
                    eprintln!("[table3] assemble rp={rp} t={temp_idx}: {e}");
                    std::process::exit(1)
                })
            })
            .collect();
        let mut results: Vec<Vec<RegionEval>> = Vec::new();
        for (mi, &method) in methods.iter().enumerate() {
            let mut row = Vec::new();
            for (temp_idx, ds) in datasets.iter().enumerate() {
                let eval = run_region_cell_on(ds, method, &cfg)
                    .unwrap_or_else(|e| panic!("cell rp={rp} t={temp_idx} {method}: {e}"));
                totals[mi].1 += eval.mean_length;
                totals[mi].2 += eval.coverage;
                row.push(eval);
            }
            eprintln!(
                "[table3] rp {} ({}) {method}: done",
                rp, campaign.read_points[rp]
            );
            results.push(row);
        }
        println!("{}", format_region_table(&campaign, rp, &methods, &results));
    }

    let cells = (campaign.read_points.len() * campaign.temperatures.len()) as f64;
    println!("Averages across all cells (length mV | coverage %):");
    for (method, len, cov) in &totals {
        println!(
            "  {:<26} {:>8.2} | {:>5.1}",
            method.to_string(),
            len / cells,
            cov / cells * 100.0
        );
    }
}
