//! Robustness sweep: interval coverage and length of the sanitized CQR
//! pipeline versus mixed corruption rate, 0% → 20%.
//!
//! For each rate the clean campaign is corrupted with every fault class
//! active (`CorruptionConfig::mixed`), repaired by the degradation policy,
//! refitted at α = 0.1, and the repaired dataset's empirical coverage and
//! mean interval length are reported next to the repair counts — the
//! dirty-silicon counterpart of Table III's clean-data rows.
//!
//! Shape expectations:
//! - coverage stays ≥ ~0.85 across the sweep (the conformal guarantee is
//!   re-established on the repaired data);
//! - interval length grows with the corruption rate (repair is not free —
//!   imputation and winsorization blur the features);
//! - the repair counts climb roughly linearly with the rate.
//!
//! Run: `cargo run --release -p vmin-bench --bin robustness_sweep [--scale quick|medium|full]`

#![forbid(unsafe_code)]

use vmin_bench::Scale;
use vmin_core::{DegradationPolicy, FeatureSet, PointModel, RegionMethod, VminPredictor};
use vmin_silicon::{Campaign, CorruptionConfig, CorruptionInjector};

fn main() {
    let scale = Scale::from_args();
    let spec = scale.dataset_spec();
    let cfg = scale.experiment_config();
    let alpha = cfg.alpha;
    eprintln!(
        "[robustness] scale {scale:?}: simulating {} chips…",
        spec.chip_count
    );
    let clean = Campaign::run(&spec, Scale::CAMPAIGN_SEED);
    let method = RegionMethod::Cqr(PointModel::Linear);
    let policy = DegradationPolicy::repair_default();

    println!(
        "Sanitized CQR under mixed corruption @ rp 0, 25 °C (α = {alpha})\n\
         {:>6} {:>7} {:>6} {:>8} {:>8} {:>8} {:>5} {:>9} {:>10}",
        "rate", "faults", "rows", "imputed", "clipped", "dropped", "fall", "coverage", "length mV"
    );
    for pct in [0usize, 5, 10, 15, 20] {
        let rate = pct as f64 / 100.0;
        let (campaign, ledger) = if rate == 0.0 {
            (clean.clone(), Default::default())
        } else {
            let injector = CorruptionInjector::new(
                CorruptionConfig::mixed(rate),
                Scale::CAMPAIGN_SEED ^ pct as u64,
            )
            .unwrap_or_else(|e| panic!("rate {rate}: {e}"));
            injector.corrupt(&clean)
        };
        let fit = VminPredictor::fit_sanitized(
            &campaign,
            0,
            1,
            FeatureSet::Both,
            &policy,
            method,
            alpha,
            cfg.cal_fraction.max(0.25),
            cfg.seed,
            &cfg.models,
        )
        .unwrap_or_else(|e| panic!("rate {rate}: {e}"));

        let ds = &fit.dataset;
        let mut covered = 0usize;
        let mut length = 0.0;
        for i in 0..ds.n_samples() {
            let iv = fit
                .predictor
                .interval(ds.sample(i))
                .unwrap_or_else(|e| panic!("rate {rate} chip {i}: {e}"));
            if iv.contains(ds.targets()[i]) {
                covered += 1;
            }
            length += iv.length();
        }
        let n = ds.n_samples() as f64;
        println!(
            "{:>5}% {:>7} {:>6} {:>8} {:>8} {:>8} {:>5} {:>8.1}% {:>10.2}",
            pct,
            ledger.total(),
            ds.n_samples(),
            fit.log.imputed_cells,
            fit.log.clipped_cells,
            fit.log.dropped_columns.len(),
            if fit.log.monitor_fallback {
                "yes"
            } else {
                "no"
            },
            100.0 * covered as f64 / n,
            length / n,
        );
        if fit.log.monitor_fallback {
            if let Some(cost) = fit.log.fallback_length_cost_mv {
                println!("       ↳ parametric-only fallback, length cost {cost:+.1} mV");
            }
        }
    }
}
