//! Quick probe: CQR CatBoost interval length per feature set at two read
//! points — used to iterate on simulator calibration without the full
//! Table IV sweep.
#![forbid(unsafe_code)]

use vmin_bench::Scale;
use vmin_core::{run_region_cell, FeatureSet, PointModel, RegionMethod};
use vmin_silicon::Campaign;

fn main() {
    let scale = Scale::from_args();
    let campaign = Campaign::run(&scale.dataset_spec(), Scale::CAMPAIGN_SEED);
    let cfg = scale.experiment_config();
    let method = RegionMethod::Cqr(PointModel::CatBoost);
    for rp in [0usize, 4] {
        let mut row = Vec::new();
        for fs in [FeatureSet::Parametric, FeatureSet::OnChip, FeatureSet::Both] {
            let mut acc = 0.0;
            for t in 0..3 {
                acc += run_region_cell(&campaign, rp, t, method, fs, &cfg)
                    .unwrap()
                    .mean_length;
            }
            row.push(acc / 3.0);
        }
        println!(
            "rp {rp}: parametric {:.2}  onchip {:.2}  both {:.2}",
            row[0], row[1], row[2]
        );
    }
}
