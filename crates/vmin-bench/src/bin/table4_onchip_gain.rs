//! Regenerates **Table IV and Fig. 3**: CQR CatBoost interval length with
//! three feature sets — parametric only, on-chip only, both — per
//! temperature and stress read point, plus the "on-chip monitor gain" row
//! (paper: ≈ 21% average reduction, and on-chip-only beats parametric-only
//! despite having far fewer features).
//!
//! Run: `cargo run --release -p vmin-bench --bin table4_onchip_gain [--scale quick|medium|full]`

#![forbid(unsafe_code)]

use vmin_bench::Scale;
use vmin_core::{
    format_feature_set_table, onchip_monitor_gain, run_feature_set_study, run_region_cell,
    FeatureSet, PointModel, RegionMethod,
};
use vmin_silicon::Campaign;

fn main() {
    let scale = Scale::from_args();
    let spec = scale.dataset_spec();
    let cfg = scale.experiment_config();
    eprintln!(
        "[table4] scale {scale:?}: simulating {} chips…",
        spec.chip_count
    );
    let campaign = Campaign::run(&spec, Scale::CAMPAIGN_SEED);
    let method = RegionMethod::Cqr(PointModel::CatBoost);

    // Fig. 3: per-read-point interval lengths per feature set (averaged
    // over temperatures) — the series the figure plots.
    println!("Fig. 3 series — CQR CatBoost mean interval length (mV) by read point:");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "stress", "Parametric", "On-chip", "Both"
    );
    for rp in 0..campaign.read_points.len() {
        let mut row = Vec::new();
        for fs in [FeatureSet::Parametric, FeatureSet::OnChip, FeatureSet::Both] {
            let mut acc = 0.0;
            for temp_idx in 0..campaign.temperatures.len() {
                let eval = run_region_cell(&campaign, rp, temp_idx, method, fs, &cfg)
                    .unwrap_or_else(|e| panic!("cell rp={rp} t={temp_idx} {fs}: {e}"));
                acc += eval.mean_length;
            }
            row.push(acc / campaign.temperatures.len() as f64);
        }
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2}",
            campaign.read_points[rp].to_string(),
            row[0],
            row[1],
            row[2]
        );
        eprintln!("[table4] rp {rp}: done");
    }

    // Table IV: averages across read points with the gain row.
    let rows = run_feature_set_study(&campaign, method, &cfg).expect("feature-set study");
    println!();
    println!("{}", format_feature_set_table(&campaign, &rows));
    let gain = onchip_monitor_gain(&rows).expect("study covers all three feature sets");
    println!(
        "On-chip monitor gain (average): {:.2}% (paper: 21.01%)",
        gain * 100.0
    );
    let onchip = rows
        .iter()
        .find(|r| r.feature_set == FeatureSet::OnChip)
        .expect("on-chip row");
    let parametric = rows
        .iter()
        .find(|r| r.feature_set == FeatureSet::Parametric)
        .expect("parametric row");
    println!(
        "On-chip-only vs parametric-only: {:.2} vs {:.2} mV (paper: on-chip wins despite 10x fewer features)",
        onchip.average_length, parametric.average_length
    );
}
