//! # vmin-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation on the synthetic-silicon substrate:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Fig. 2 (point-prediction R²/RMSE) | `fig2_point_prediction` |
//! | Table III (interval length & coverage) | `table3_region_prediction` |
//! | Table IV + Fig. 3 (on-chip monitor gain) | `table4_onchip_gain` |
//!
//! Each binary accepts `--scale quick|medium|full`:
//!
//! - `quick`: reduced campaign and training budgets (~1 min) — CI-friendly.
//! - `medium` (default): the paper's 156 chips and read points with a
//!   reduced parametric-test count and training budgets sized for a laptop.
//! - `full`: the paper's full Table II inventory and §IV-C model budgets.
//!
//! Criterion micro-benches (`cargo bench -p vmin-bench`) time the model
//! fits, conformal calibration and the simulator, plus two ablations.

#![forbid(unsafe_code)]

pub mod harness;

use vmin_core::{ExperimentConfig, ModelConfig};
use vmin_silicon::DatasetSpec;

/// Benchmark scale selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small campaign, fast budgets.
    Quick,
    /// Paper-sized population, laptop-sized feature count and budgets.
    Medium,
    /// Paper's full inventory and budgets.
    Full,
}

impl Scale {
    /// Parses `--scale <value>` from CLI args; defaults to `Medium`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown value.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--scale") {
            None => Scale::Medium,
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("quick") => Scale::Quick,
                Some("medium") => Scale::Medium,
                Some("full") => Scale::Full,
                other => panic!("usage: --scale quick|medium|full (got {other:?})"),
            },
        }
    }

    /// The campaign specification for this scale.
    pub fn dataset_spec(&self) -> DatasetSpec {
        match self {
            Scale::Quick => DatasetSpec::small(),
            Scale::Medium => {
                let mut spec = DatasetSpec::default(); // 156 chips, paper read points
                spec.parametric.iddq_per_temp = 40;
                spec.parametric.trip_idd_per_temp = 20;
                spec.parametric.leakage_per_temp = 30;
                spec.parametric.artifact_per_temp = 10;
                spec.monitors.rod_count = 60;
                spec.monitors.cpd_count = 10;
                spec
            }
            Scale::Full => DatasetSpec::default(),
        }
    }

    /// The experiment protocol/budgets for this scale.
    pub fn experiment_config(&self) -> ExperimentConfig {
        match self {
            Scale::Quick => ExperimentConfig::fast(),
            Scale::Medium => ExperimentConfig {
                models: ModelConfig {
                    nn_epochs: 1500,
                    qlin_epochs: 1500,
                    gbt_rounds: 60,
                    cat_rounds: 100,
                    nn_seed: 0,
                },
                ..ExperimentConfig::default()
            },
            Scale::Full => ExperimentConfig::default(),
        }
    }

    /// The campaign seed shared by every artifact regenerator, so the three
    /// binaries all see the same synthetic silicon.
    pub const CAMPAIGN_SEED: u64 = 20240325;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_keeps_paper_population() {
        let spec = Scale::Medium.dataset_spec();
        assert_eq!(spec.chip_count, 156);
        assert_eq!(spec.stress.read_points.len(), 6);
        assert!(spec.parametric.total_tests() < 1800);
    }

    #[test]
    fn full_matches_table2() {
        let spec = Scale::Full.dataset_spec();
        assert_eq!(spec.parametric.total_tests(), 1800);
        assert_eq!(spec.monitors.rod_count, 168);
    }

    #[test]
    fn budgets_ordered() {
        let q = Scale::Quick.experiment_config();
        let m = Scale::Medium.experiment_config();
        let f = Scale::Full.experiment_config();
        assert!(q.models.nn_epochs <= m.models.nn_epochs);
        assert!(m.models.nn_epochs <= f.models.nn_epochs);
        assert_eq!(f.models.nn_epochs, 3000);
    }
}
