#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test suite.
# Everything runs offline against the vendored workspace.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> vmin-lint (determinism / NaN / panic-hygiene gate)"
cargo run -q -p vmin-lint -- --list-rules
VMIN_LINT_JSON=target/vmin-lint.json cargo run -q -p vmin-lint -- --deny
test -s target/vmin-lint.json
grep -q '"schema": "vmin-lint/v1"' target/vmin-lint.json
grep -q '"status": "clean"' target/vmin-lint.json
# The committed ratchet baseline must be tight: rewriting it at the current
# counts has to be a no-op, otherwise somebody improved a count without
# tightening (or the file was hand-edited upward).
cargo run -q -p vmin-lint -- --update-baseline
git diff --exit-code -- lint-baseline.json

echo "==> tier-1: cargo build --release && cargo test -q (default thread pool)"
cargo build --release
cargo test -q

echo "==> tier-1 again, pinned serial (VMIN_THREADS=1)"
VMIN_THREADS=1 cargo test -q

echo "==> tier-1 again, tracing disabled (VMIN_TRACE=0)"
VMIN_TRACE=0 cargo test -q

echo "==> vmin-trace report: schema + cross-thread-count counter identity"
VMIN_THREADS=1 VMIN_TRACE_JSON=target/trace-t1.json \
    cargo run -q --release -p vmin-bench --bin trace_report
VMIN_THREADS=8 VMIN_TRACE_JSON=target/trace-t8.json \
    cargo run -q --release -p vmin-bench --bin trace_report
for f in target/trace-t1.json target/trace-t8.json; do
    test -s "$f"
    grep -q '"schema": "vmin-trace/v1"' "$f"
    grep -q '"kind": "counter"' "$f"
    grep -q '"kind": "timer"' "$f"
done
# The deterministic sections (counters, gauges, histograms) must be
# line-identical across thread counts; topology and timer lines are the
# two documented exemptions.
for kind in counter gauge histogram; do
    diff <(grep "\"kind\": \"$kind\"" target/trace-t1.json) \
         <(grep "\"kind\": \"$kind\"" target/trace-t8.json) \
        || { echo "vmin-trace $kind section differs between VMIN_THREADS=1 and 8"; exit 1; }
done

echo "==> bench smoke: par_speedup writes BENCH_PR2.json"
VMIN_BENCH_JSON=BENCH_PR2.json VMIN_BENCH_SAMPLES=3 \
    cargo bench -p vmin-bench --bench par_speedup
test -s BENCH_PR2.json
grep -q '"threads":' BENCH_PR2.json
grep -q '"id": "matmul_serial"' BENCH_PR2.json
grep -q '"id": "campaign_small_parallel"' BENCH_PR2.json
grep -q '"id": "table3_region_cell_parallel"' BENCH_PR2.json

echo "CI green."
