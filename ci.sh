#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test suite.
# Everything runs offline against the vendored workspace.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> vmin-lint v2 (determinism dataflow / contract / panic-hygiene gate)"
cargo run -q -p vmin-lint -- --list-rules
VMIN_LINT_JSON=target/vmin-lint.json cargo run -q -p vmin-lint -- --deny
test -s target/vmin-lint.json
grep -q '"schema": "vmin-lint/v2"' target/vmin-lint.json
grep -q '"status": "clean"' target/vmin-lint.json
# The deny run must have enforced the checked-in contract registry (an
# unreadable/missing contracts.toml under --deny is a hard error, so this
# grep is belt-and-braces against a silent schema change).
grep -q '"enforced": true' target/vmin-lint.json
# The suppression budget rides the ratchet: every crate that spends allow
# comments must show up, and (via the baseline no-op below) never grow.
grep -q '"rule": "suppression-budget"' target/vmin-lint.json
# The committed ratchet baseline must be tight: rewriting it at the current
# counts has to be a no-op, otherwise somebody improved a count without
# tightening (or the file was hand-edited upward).
cargo run -q -p vmin-lint -- --update-baseline
git diff --exit-code -- lint-baseline.json
# Same tightness contract for the contract registry: --update-contracts
# only drops stale entries and renormalizes, so on a healthy tree it is a
# byte-for-byte no-op. A diff here means an env var or metric was removed
# from the code without being unregistered (or the file drifted from
# canonical form).
cargo run -q -p vmin-lint -- --update-contracts
git diff --exit-code -- contracts.toml

echo "==> tier-1: cargo build --release && cargo test -q (default thread pool)"
cargo build --release
cargo test -q

echo "==> tier-1 again, pinned serial (VMIN_THREADS=1)"
VMIN_THREADS=1 cargo test -q

echo "==> tier-1 again, tracing disabled (VMIN_TRACE=0)"
VMIN_TRACE=0 cargo test -q

echo "==> vmin-trace report: schema + cross-thread-count counter identity"
# Histograms pinned off: this leg asserts the fit-plan scratch counters
# below, which only the exact-scan path exercises. The histogram leg
# further down covers the VMIN_HIST=1 counters with its own trace export.
VMIN_HIST=0 VMIN_THREADS=1 VMIN_TRACE_JSON=target/trace-t1.json \
    cargo run -q --release -p vmin-bench --bin trace_report
VMIN_HIST=0 VMIN_THREADS=8 VMIN_TRACE_JSON=target/trace-t8.json \
    cargo run -q --release -p vmin-bench --bin trace_report
for f in target/trace-t1.json target/trace-t8.json; do
    test -s "$f"
    grep -q '"schema": "vmin-trace/v1"' "$f"
    grep -q '"kind": "counter"' "$f"
    grep -q '"kind": "timer"' "$f"
done
# The deterministic sections (counters, gauges, histograms) must be
# line-identical across thread counts; topology and timer lines are the
# two documented exemptions.
for kind in counter gauge histogram; do
    diff <(grep "\"kind\": \"$kind\"" target/trace-t1.json) \
         <(grep "\"kind\": \"$kind\"" target/trace-t8.json) \
        || { echo "vmin-trace $kind section differs between VMIN_THREADS=1 and 8"; exit 1; }
done

echo "==> bench smoke: par_speedup + fit_cache + fit_hist write target/BENCH_PR5.json"
# Absolute path: the bench binary's CWD is the package dir, not the repo root.
VMIN_BENCH_JSON="$PWD/target/BENCH_PR5.json" VMIN_BENCH_SAMPLES=3 \
    cargo bench -p vmin-bench --bench par_speedup
test -s target/BENCH_PR5.json
grep -q '"threads":' target/BENCH_PR5.json
# The thread sweep writes one row per thread count — ids carry the count.
grep -q '"id": "matmul_threads1"' target/BENCH_PR5.json
grep -q '"id": "matmul_threads2"' target/BENCH_PR5.json
grep -q '"id": "campaign_small_threads1"' target/BENCH_PR5.json
grep -q '"id": "table3_region_cell_threads2"' target/BENCH_PR5.json
# The fit-cache group records uncached-vs-cached pairs for the GBT family.
grep -q '"group": "fit_cache"' target/BENCH_PR5.json
grep -q '"id": "gbt_fit_uncached"' target/BENCH_PR5.json
grep -q '"id": "gbt_fit_cached"' target/BENCH_PR5.json
grep -q '"id": "cqr_xgb_region_cell_cached"' target/BENCH_PR5.json
# The fit-hist group records exact-vs-binned pairs (PR 7 tentpole).
grep -q '"group": "fit_hist"' target/BENCH_PR5.json
grep -q '"id": "catboost_fit_exact"' target/BENCH_PR5.json
grep -q '"id": "catboost_fit_hist"' target/BENCH_PR5.json
grep -q '"id": "gbt_fit_hist"' target/BENCH_PR5.json
grep -q '"id": "cqr_xgb_region_cell_hist"' target/BENCH_PR5.json
grep -q '"id": "cqr_catboost_region_cell_hist"' target/BENCH_PR5.json

echo "==> fit-plan cache: counters present + interval exactness smoke"
# The trace_report workload routes through GBT-family fits, so the cache
# counters must appear in the deterministic counter section.
grep -q '"models.fitplan.build"' target/trace-t1.json
grep -q '"models.fitplan.reuse"' target/trace-t1.json
grep -q '"models.fitplan.scratch_reuse"' target/trace-t1.json
# Same fixed CQR cell with the cache globally off and on: the interval bit
# patterns must be identical (the cache is a pure time optimization).
VMIN_FITPLAN=0 cargo run -q --release -p vmin-bench --bin fit_cache_smoke \
    > target/fit-cache-off.txt
VMIN_FITPLAN=1 cargo run -q --release -p vmin-bench --bin fit_cache_smoke \
    > target/fit-cache-on.txt
test -s target/fit-cache-off.txt
diff target/fit-cache-off.txt target/fit-cache-on.txt \
    || { echo "fit-plan cache changed interval bits"; exit 1; }

echo "==> histogram split leg: thread invariance, kill switch, trace counters"
# The binned path must be bit-identical under any thread count.
VMIN_HIST=1 VMIN_THREADS=1 VMIN_TRACE_JSON=target/trace-hist.json \
    cargo run -q --release -p vmin-bench --bin hist_smoke > target/hist-t1.txt
VMIN_HIST=1 VMIN_THREADS=8 \
    cargo run -q --release -p vmin-bench --bin hist_smoke > target/hist-t8.txt
test -s target/hist-t1.txt
diff target/hist-t1.txt target/hist-t8.txt \
    || { echo "binned intervals differ between VMIN_THREADS=1 and 8"; exit 1; }
# The kill switch must actually change the fitted models (the binary also
# self-checks that binned stays numerically close to exact in-process).
VMIN_HIST=0 VMIN_THREADS=1 \
    cargo run -q --release -p vmin-bench --bin hist_smoke > target/hist-off.txt
if diff -q target/hist-t1.txt target/hist-off.txt > /dev/null; then
    echo "VMIN_HIST=0 output is identical to the binned run"; exit 1
fi
# The histogram kernels' deterministic counters must reach the trace report.
test -s target/trace-hist.json
grep -q '"models.hist.tree_fits"' target/trace-hist.json
grep -q '"models.hist.oblivious_fits"' target/trace-hist.json
grep -q '"models.hist.level_searches"' target/trace-hist.json
grep -q '"models.hist.child_subtracted"' target/trace-hist.json

echo "==> streaming drift leg: thread invariance, kill switch, trace counters"
# The drifted stream must be byte-identical under any thread count.
VMIN_ADAPTIVE=1 VMIN_THREADS=1 VMIN_TRACE_JSON=target/trace-drift.json \
    cargo run -q --release -p vmin-bench --bin drift_smoke > target/drift-t1.txt
VMIN_ADAPTIVE=1 VMIN_THREADS=8 \
    cargo run -q --release -p vmin-bench --bin drift_smoke > target/drift-t8.txt
diff target/drift-t1.txt target/drift-t8.txt \
    || { echo "drift stream differs between VMIN_THREADS=1 and 8"; exit 1; }
# The kill switch must actually change behavior on a drifting stream (the
# binary self-checks the frozen-static degradation contract when disabled).
VMIN_ADAPTIVE=0 VMIN_THREADS=1 \
    cargo run -q --release -p vmin-bench --bin drift_smoke > target/drift-off.txt
if diff -q target/drift-t1.txt target/drift-off.txt > /dev/null; then
    echo "VMIN_ADAPTIVE=0 output is identical to the adaptive run"; exit 1
fi
# The adaptive layer's deterministic counters must reach the trace report.
test -s target/trace-drift.json
grep -q '"conformal.adaptive.observations"' target/trace-drift.json
grep -q '"conformal.adaptive.recalibrations"' target/trace-drift.json
grep -q '"conformal.adaptive.transitions"' target/trace-drift.json
grep -q '"core.stream.read_points"' target/trace-drift.json

echo "==> serve leg: equivalence + golden artifacts, kill switch, artifact header"
# The dedicated serving suites: flattened kernels byte-identical to the
# live path, and the golden artifact fixtures still decode bit-for-bit.
cargo test -q --test serve_equivalence
cargo test -q -p vmin-serve
# Served interval bits must be identical across the whole serve matrix:
# thread counts × kill switch (VMIN_SERVE=0 routes through the scalar
# trait-equivalent path, so this diff IS the kill-switch contract).
VMIN_SERVE=1 VMIN_THREADS=1 \
    cargo run -q --release -p vmin-bench --bin serve_smoke target/serve-t1.bin \
    > target/serve-t1.txt
VMIN_SERVE=1 VMIN_THREADS=4 \
    cargo run -q --release -p vmin-bench --bin serve_smoke target/serve-t4.bin \
    > target/serve-t4.txt
VMIN_SERVE=0 VMIN_THREADS=1 VMIN_TRACE_JSON=target/trace-serve.json \
    cargo run -q --release -p vmin-bench --bin serve_smoke target/serve-off.bin \
    > target/serve-off.txt
diff target/serve-t1.txt target/serve-t4.txt \
    || { echo "served bits differ between VMIN_THREADS=1 and 4"; exit 1; }
diff target/serve-t1.txt target/serve-off.txt \
    || { echo "VMIN_SERVE=0 bits differ from the flattened kernels"; exit 1; }
# A freshly written artifact must lead with the versioned magic, and the
# bytes must not depend on which path served the batch.
grep -aq 'vmin-artifact/v1' target/serve-t1.bin
cmp target/serve-t1.bin target/serve-off.bin \
    || { echo "artifact bytes depend on VMIN_SERVE"; exit 1; }
# The serving counters must reach the trace export (scalar.rows proves
# the kill-switch run actually took the scalar path).
test -s target/trace-serve.json
grep -q '"serve.rows"' target/trace-serve.json
grep -q '"serve.scalar.rows"' target/trace-serve.json
grep -q '"serve.artifact.saves"' target/trace-serve.json

echo "==> bench smoke: serve_throughput writes target/BENCH_PR9.json"
VMIN_BENCH_JSON="$PWD/target/BENCH_PR9.json" VMIN_BENCH_SAMPLES=3 \
    cargo bench -p vmin-bench --bench serve_throughput
test -s target/BENCH_PR9.json
grep -q '"id": "gbt_trait_dispatch"' target/BENCH_PR9.json
grep -q '"id": "gbt_flat_batch"' target/BENCH_PR9.json
grep -q '"id": "catboost_flat_batch"' target/BENCH_PR9.json
grep -q '"id": "gbt_flat_batch_parallel"' target/BENCH_PR9.json

echo "==> stream leg: chunk/thread/kill-switch invariance + trace counters"
# The dedicated stream suite: chunked generation bit-identical to the
# monolithic campaign across seeds × chunk sizes × thread counts.
cargo test -q -p vmin-silicon --test stream_equivalence
# stream_smoke prints one digest per streamed chip plus the fused screening
# report; every knob combination must produce byte-identical stdout. The
# chunk knob moves block boundaries only, the kill switch materializes and
# slices, and threads only change shard fan-out.
VMIN_STREAM=1 VMIN_THREADS=1 VMIN_TRACE_JSON=target/trace-stream.json \
    cargo run -q --release -p vmin-bench --bin stream_smoke > target/stream-t1.txt
VMIN_STREAM=1 VMIN_THREADS=8 \
    cargo run -q --release -p vmin-bench --bin stream_smoke > target/stream-t8.txt
VMIN_STREAM=1 VMIN_STREAM_CHUNK=17 \
    cargo run -q --release -p vmin-bench --bin stream_smoke > target/stream-c17.txt
VMIN_STREAM=0 VMIN_THREADS=1 VMIN_TRACE_JSON=target/trace-stream-off.json \
    cargo run -q --release -p vmin-bench --bin stream_smoke > target/stream-off.txt
test -s target/stream-t1.txt
diff target/stream-t1.txt target/stream-t8.txt \
    || { echo "streamed chips differ between VMIN_THREADS=1 and 8"; exit 1; }
diff target/stream-t1.txt target/stream-c17.txt \
    || { echo "streamed chips depend on VMIN_STREAM_CHUNK"; exit 1; }
diff target/stream-t1.txt target/stream-off.txt \
    || { echo "VMIN_STREAM=0 output differs from the streamed path"; exit 1; }
# The stream and fused-screening counters must reach the trace export; the
# fallback counter proves the kill-switch run took the materialized path.
test -s target/trace-stream.json
grep -q '"silicon.stream.chunks"' target/trace-stream.json
grep -q '"silicon.stream.chips"' target/trace-stream.json
grep -q '"silicon.stream.shards"' target/trace-stream.json
grep -q '"fleet.chips"' target/trace-stream.json
grep -q '"fleet.blocks"' target/trace-stream.json
grep -q '"silicon.stream.fallback"' target/trace-stream-off.json

echo "==> bench smoke: fleet_throughput writes target/BENCH_PR10.json"
VMIN_BENCH_JSON="$PWD/target/BENCH_PR10.json" VMIN_BENCH_SAMPLES=1 VMIN_BENCH_FLEET=2000 \
    cargo bench -p vmin-bench --bench fleet_throughput
test -s target/BENCH_PR10.json
grep -q '"id": "generate_only_c2000"' target/BENCH_PR10.json
grep -q '"id": "serve_only_c2000"' target/BENCH_PR10.json
grep -q '"id": "fused_generate_serve_c2000"' target/BENCH_PR10.json
grep -q '"id": "materialize_then_serve_c2000"' target/BENCH_PR10.json

echo "CI green."
