//! The value of on-chip monitors (§IV-G): compare CQR interval lengths with
//! parametric-only, on-chip-only and combined features — a miniature of
//! Fig. 3 / Table IV, including the "on-chip monitor gain" row.
//!
//! Run with: `cargo run --release --example monitor_value`

use cqr_vmin::core::{
    format_feature_set_table, onchip_monitor_gain, run_feature_set_study, ExperimentConfig,
    PointModel, RegionMethod,
};
use cqr_vmin::silicon::{Campaign, DatasetSpec};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut spec = DatasetSpec::small();
    spec.chip_count = 120;
    let campaign = Campaign::run(&spec, 13);

    // CQR-linear keeps this example fast; the Table IV bench uses the
    // paper's CQR CatBoost.
    let cfg = ExperimentConfig::fast();
    let rows = run_feature_set_study(&campaign, RegionMethod::Cqr(PointModel::Linear), &cfg)?;

    println!("{}", format_feature_set_table(&campaign, &rows));
    let gain = onchip_monitor_gain(&rows)?;
    println!(
        "adding on-chip monitors to parametric data shrinks CQR intervals by {:.1}% \
         (paper reports ≈21% with CQR CatBoost)",
        gain * 100.0
    );
    Ok(())
}
