//! Quickstart: simulate a burn-in campaign, fit a CQR CatBoost interval
//! predictor for time-0 SCAN Vmin, and screen chips against the min-spec.
//!
//! Run with: `cargo run --release --example quickstart`

use cqr_vmin::core::{
    assemble_dataset, FeatureSet, ModelConfig, PointModel, RegionMethod, VminPredictor,
};
use cqr_vmin::data::train_test_split;
use cqr_vmin::silicon::{Campaign, DatasetSpec};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Simulate the data-collection campaign of §IV-A. `DatasetSpec::
    //    default()` is the paper's full setup (156 chips, 1800 parametric
    //    tests, 168 ROD + 10 CPD monitors); `small()` keeps this example
    //    snappy.
    let mut spec = DatasetSpec::small();
    spec.chip_count = 120;
    let campaign = Campaign::run(&spec, 42);
    println!(
        "simulated {} chips × {} read points; tester clock = {:.1} ps",
        campaign.chip_count(),
        campaign.read_points.len(),
        campaign.clock_period_ps
    );

    // 2. Assemble the supervised dataset: time-0 Vmin at 25 °C from
    //    parametric + on-chip features.
    let dataset = assemble_dataset(&campaign, 0, 1, FeatureSet::Both)?;
    println!(
        "dataset: {} chips × {} features",
        dataset.n_samples(),
        dataset.n_features()
    );

    // 3. Hold out a test set, then fit the paper's best method — CQR around
    //    CatBoost-style oblivious boosting — at 90% target coverage.
    let split = train_test_split(dataset.n_samples(), 0.75, 7);
    let train = dataset.subset_rows(&split.train)?;
    let test = dataset.subset_rows(&split.test)?;
    let predictor = VminPredictor::fit(
        &train,
        RegionMethod::Cqr(PointModel::CatBoost),
        0.1,  // α: 90% coverage target
        0.25, // 25% of training chips held for conformal calibration
        7,
        &ModelConfig::default(),
    )?;

    // 4. Predict intervals for unseen chips and screen against min-spec.
    let min_spec_mv = 700.0;
    let mut covered = 0;
    let mut flagged = 0;
    println!("\n chip |        interval (mV)        | true Vmin | in? | spec risk");
    for i in 0..test.n_samples() {
        let iv = predictor.interval(test.sample(i))?;
        let y = test.targets()[i];
        let inside = iv.contains(y);
        covered += usize::from(inside);
        let risk = predictor.flags_spec_risk(test.sample(i), min_spec_mv)?;
        flagged += usize::from(risk);
        if i < 10 {
            println!(
                " {i:>4} | [{:>8.2}, {:>8.2}] w={:>5.1} | {y:>9.2} | {} | {}",
                iv.lo(),
                iv.hi(),
                iv.length(),
                if inside { "yes" } else { " NO" },
                if risk { "FLAG" } else { "ok" }
            );
        }
    }
    println!(
        "\ncoverage on held-out chips: {}/{} ({:.1}%), {} flagged vs min-spec {} mV",
        covered,
        test.n_samples(),
        100.0 * covered as f64 / test.n_samples() as f64,
        flagged,
        min_spec_mv
    );
    Ok(())
}
