//! ML-assisted Vmin binning with guard bands (the application of the
//! paper's reference [4]): assign each chip to the lowest safe supply bin
//! using its guaranteed-coverage interval upper bound, and quantify the
//! dynamic-power savings versus running the whole population at the top
//! bin.
//!
//! Run with: `cargo run --release --example vmin_binning`

use cqr_vmin::core::{
    assemble_dataset, bin_population, BinningScheme, FeatureSet, ModelConfig, PointModel,
    RegionMethod, VminPredictor,
};
use cqr_vmin::data::train_test_split;
use cqr_vmin::silicon::{Campaign, DatasetSpec};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut spec = DatasetSpec::small();
    spec.chip_count = 150;
    let campaign = Campaign::run(&spec, 99);

    // Time-0 Vmin at the worst corner drives the bin decision.
    let ds = assemble_dataset(&campaign, 0, 0, FeatureSet::Both)?;
    let split = train_test_split(ds.n_samples(), 0.6, 4);
    let train = ds.subset_rows(&split.train)?;
    let incoming = ds.subset_rows(&split.test)?;

    let predictor = VminPredictor::fit(
        &train,
        RegionMethod::Cqr(PointModel::Linear),
        0.1,
        0.25,
        4,
        &ModelConfig::default(),
    )?;

    // Three bins spanning the population, guard-banded by 3 mV.
    let q = |p| cqr_vmin::linalg::quantile(train.targets(), p).expect("quantile");
    let bins = vec![q(0.35) + 5.0, q(0.75) + 5.0, q(1.0) + 40.0];
    let scheme = BinningScheme::new(bins.clone(), 3.0)?;
    let report = bin_population(&predictor, &scheme, &incoming)?;

    println!(
        "bin supplies: {:?} mV (guard band 3 mV)",
        bins.iter().map(|b| b.round()).collect::<Vec<_>>()
    );
    for (i, (v, n)) in bins.iter().zip(&report.bin_counts).enumerate() {
        println!("  bin {i} @ {v:7.1} mV: {n:3} chips");
    }
    println!("  unbinnable (route to measurement): {}", report.unbinnable);
    println!(
        "mean shipped supply: {:.1} mV; dynamic power vs top bin: {:.1}%; bin escapes: {}",
        report.mean_supply_mv,
        report.power_ratio * 100.0,
        report.escapes
    );
    Ok(())
}
