//! Adaptive production testing (§V future work, implemented): gate the
//! expensive shmoo Vmin measurement behind the CQR interval. Chips whose
//! guaranteed-coverage interval clearly clears (or clearly violates) the
//! min-spec skip the measurement entirely; only ambiguous chips hit the
//! tester.
//!
//! Run with: `cargo run --release --example adaptive_testing`

use cqr_vmin::core::{
    assemble_dataset, simulate_screening, FeatureSet, ModelConfig, PointModel, RegionMethod,
    ScreeningPolicy, VminPredictor,
};
use cqr_vmin::data::train_test_split;
use cqr_vmin::silicon::{Campaign, DatasetSpec};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut spec = DatasetSpec::small();
    spec.chip_count = 150;
    let campaign = Campaign::run(&spec, 31);

    // Time-0 production insertion at the worst corner (−45 °C).
    let ds = assemble_dataset(&campaign, 0, 0, FeatureSet::Both)?;
    let split = train_test_split(ds.n_samples(), 0.6, 11);
    let train = ds.subset_rows(&split.train)?;
    let incoming = ds.subset_rows(&split.test)?;

    let predictor = VminPredictor::fit(
        &train,
        RegionMethod::Cqr(PointModel::Linear),
        0.1,
        0.25,
        11,
        &ModelConfig::default(),
    )?;

    // Conventional flow cost: every chip runs the full shmoo. Count the
    // evaluations the tester would have spent (from the simulator's own
    // shmoo search on the nominal chip).
    let shmoo_steps_per_chip =
        ((spec.vmin_test.search_high.0 - 500e-3) / spec.vmin_test.shmoo_step.0) as usize;

    println!(
        "incoming lot: {} chips; shmoo ≈ {} supply steps per chip",
        incoming.n_samples(),
        shmoo_steps_per_chip
    );
    println!(
        "\n{:>10} | {:>5} | {:>5} | {:>7} | {:>7} | {:>8} | {:>7}",
        "min-spec", "ship", "rej", "measure", "escapes", "overkill", "saved"
    );
    for spec_quantile in [0.80, 0.90, 0.97] {
        let min_spec = cqr_vmin::linalg::quantile(train.targets(), spec_quantile)?;
        let policy = ScreeningPolicy::new(&predictor, min_spec, 3.0);
        let report = simulate_screening(&policy, &incoming)?;
        println!(
            "{:>7.1}mV | {:>5} | {:>5} | {:>7} | {:>7} | {:>8} | {:>6.1}%",
            min_spec,
            report.predicted_pass,
            report.predicted_fail,
            report.measured,
            report.escapes,
            report.overkill,
            report.measurement_savings * 100.0,
        );
    }
    println!(
        "\nevery skipped chip avoids ~{shmoo_steps_per_chip} tester steps; escapes stay bounded \
         by the interval's 90% coverage guarantee plus the guard band"
    );
    Ok(())
}
