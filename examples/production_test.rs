//! Production-test scenario (§III-A case 1): compare the paper's five point
//! regressors on time-0 SCAN Vmin across all three test temperatures — a
//! miniature of Fig. 2's leftmost group.
//!
//! Run with: `cargo run --release --example production_test`

use cqr_vmin::core::{
    format_point_table, run_point_cell, ExperimentConfig, FeatureSet, PointModel,
};
use cqr_vmin::silicon::{Campaign, DatasetSpec};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut spec = DatasetSpec::small();
    spec.chip_count = 120;
    let campaign = Campaign::run(&spec, 2024);

    // §IV-B protocol: 4-fold CV, shared seed. The fast budget keeps this
    // example interactive; the bench binaries use the paper's full budgets.
    let cfg = ExperimentConfig::fast();

    let models = PointModel::ALL;
    let mut results = Vec::new();
    for model in models {
        let mut row = Vec::new();
        for temp_idx in 0..campaign.temperatures.len() {
            let eval = run_point_cell(&campaign, 0, temp_idx, model, FeatureSet::Both, &cfg)?;
            row.push(eval);
        }
        eprintln!("  finished {model}");
        results.push(row);
    }

    println!("{}", format_point_table(&campaign, 0, &models, &results));

    // The paper's observation: linear regression trails the best model only
    // slightly, making it viable for on-tester deployment.
    let lr_avg: f64 = results[0].iter().map(|e| e.r2).sum::<f64>() / 3.0;
    let best_avg = results
        .iter()
        .map(|row| row.iter().map(|e| e.r2).sum::<f64>() / 3.0)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "linear regression mean R² = {lr_avg:.3}; best model mean R² = {best_avg:.3} (Δ = {:.3})",
        best_avg - lr_avg
    );
    Ok(())
}
