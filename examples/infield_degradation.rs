//! In-field degradation scenario (§III-A case 2): forecast SCAN Vmin at
//! each stress read point from time-0 parametric data plus on-chip monitor
//! readings at *previous* read points only, and watch the interval track
//! each chip's aging trajectory.
//!
//! Run with: `cargo run --release --example infield_degradation`

use cqr_vmin::core::{
    assemble_dataset, FeatureSet, ModelConfig, PointModel, RegionMethod, VminPredictor,
};
use cqr_vmin::data::train_test_split;
use cqr_vmin::silicon::{Campaign, DatasetSpec};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut spec = DatasetSpec::small();
    spec.chip_count = 120;
    let campaign = Campaign::run(&spec, 77);
    let temp_idx = 1; // 25 °C
    let alpha = 0.1;

    // Track three held-out chips across the whole stress life.
    let n = campaign.chip_count();
    let split = train_test_split(n, 0.8, 5);
    let watched: Vec<usize> = split.test.iter().take(3).copied().collect();

    println!("forecasting Vmin degradation at 25 °C (90% CQR-linear intervals):\n");
    println!(
        "{:>8} | {}",
        "stress",
        watched
            .iter()
            .map(|c| format!("chip {c:>3}: interval (true)      "))
            .collect::<Vec<_>>()
            .join(" | ")
    );

    for rp in 0..campaign.read_points.len() {
        // Features at read point rp use only monitor data from read points
        // strictly before rp (plus time-0 parametric) — a genuine forecast.
        let ds = assemble_dataset(&campaign, rp, temp_idx, FeatureSet::Both)?;
        let train = ds.subset_rows(&split.train)?;
        let predictor = VminPredictor::fit(
            &train,
            RegionMethod::Cqr(PointModel::Linear),
            alpha,
            0.25,
            5,
            &ModelConfig::default(),
        )?;
        let cells: Vec<String> = watched
            .iter()
            .map(|&c| {
                let iv = predictor.interval(ds.sample(c)).expect("prediction");
                let y = ds.targets()[c];
                format!(
                    "[{:>6.1},{:>6.1}] ({:>6.1}){}",
                    iv.lo(),
                    iv.hi(),
                    y,
                    if iv.contains(y) { " " } else { "!" }
                )
            })
            .collect();
        println!(
            "{:>8} | {}",
            campaign.read_points[rp].to_string(),
            cells.join(" | ")
        );
    }

    // Defect awareness: chips with injected defects should show wider or
    // higher intervals late in life.
    let ds_end = assemble_dataset(&campaign, 5, temp_idx, FeatureSet::Both)?;
    let train = ds_end.subset_rows(&split.train)?;
    let predictor = VminPredictor::fit(
        &train,
        RegionMethod::Cqr(PointModel::Linear),
        alpha,
        0.25,
        5,
        &ModelConfig::default(),
    )?;
    let (mut hi_def, mut n_def, mut hi_clean, mut n_clean) = (0.0, 0, 0.0, 0);
    for (i, chip) in campaign.chips.iter().enumerate() {
        let hi = predictor.interval(ds_end.sample(i))?.hi();
        if chip.defective {
            hi_def += hi;
            n_def += 1;
        } else {
            hi_clean += hi;
            n_clean += 1;
        }
    }
    if n_def > 0 {
        println!(
            "\nmean upper bound @1008 h: defective chips {:.1} mV vs clean {:.1} mV",
            hi_def / n_def as f64,
            hi_clean / n_clean as f64
        );
    }
    Ok(())
}
