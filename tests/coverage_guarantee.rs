//! Table I, demonstrated: the properties the paper tabulates for each
//! uncertainty-quantification method, verified empirically across
//! distribution shapes — the "distribution-free coverage guarantee" row in
//! particular.
//!
//! The positive tests do not use hand-tuned coverage tolerances. For `m`
//! calibration scores at miscoverage α the CQR/split-CP coverage is
//! governed by an *exact* finite-sample law (Beta-Binomial counts, see
//! `support/binomial.rs`), so each assertion checks the observed covered
//! count against a two-sided acceptance region whose failure probability
//! under the theory is at most [`DELTA`]. A pass means the implementation
//! is consistent with the guarantee; a fail is (overwhelmingly) a
//! calibration bug, not an unlucky seed.

#[path = "support/binomial.rs"]
mod binomial;

use cqr_vmin::conformal::{
    evaluate_intervals, Cqr, CqrAsymmetric, PredictionInterval, SplitConformal,
};
use cqr_vmin::linalg::Matrix;
use cqr_vmin::models::{Ensemble, LinearRegression, QuantileLinear, Regressor};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;

/// Miscoverage target for the guarantee tests (the paper's α = 0.1).
const ALPHA: f64 = 0.1;
/// Synthetic split sizes: train / calibration / test.
const N_TRAIN: usize = 70;
const N_CAL: usize = 40;
const N_TEST: usize = 60;
/// Independent repetitions per noise family (distinct seeds → iid runs).
const REPS: usize = 12;
/// Test-level failure probability for each statistical assertion. Under
/// the finite-sample theory an assertion fires with probability ≤ DELTA,
/// so a red test is evidence of a bug, not noise.
const DELTA: f64 = 1e-6;

/// Families of noise distributions — the guarantee must hold for all of
/// them without modification (distribution-freeness).
#[derive(Clone, Copy, Debug)]
enum Noise {
    Uniform,
    /// Heavy-tailed: Student-t-like via ratio of normals.
    HeavyTail,
    /// Asymmetric: exponential.
    Skewed,
    /// Heteroscedastic uniform.
    Hetero,
}

const ALL_NOISE: [Noise; 4] = [
    Noise::Uniform,
    Noise::HeavyTail,
    Noise::Skewed,
    Noise::Hetero,
];

fn draw(n: usize, noise: Noise, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen_range(0.0..4.0);
        let eps = match noise {
            Noise::Uniform => rng.gen_range(-1.0..1.0),
            Noise::HeavyTail => {
                let a: f64 = rng.gen_range(-1.0..1.0f64);
                let b: f64 = rng.gen_range(0.3..1.0);
                (a / b).clamp(-8.0, 8.0)
            }
            Noise::Skewed => -(1.0 - rng.gen::<f64>()).ln() - 1.0,
            Noise::Hetero => (0.2 + x) * rng.gen_range(-1.0..1.0),
        };
        rows.push(vec![x]);
        y.push(3.0 * x + eps);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn covered_count(intervals: &[PredictionInterval], y: &[f64]) -> usize {
    intervals
        .iter()
        .zip(y)
        .filter(|(iv, yi)| iv.contains(**yi))
        .count()
}

/// Sums a per-run covered count over [`REPS`] independent seeds.
fn total_covered<F>(noise: Noise, mut one_run: F) -> usize
where
    F: FnMut(Noise, u64) -> usize,
{
    (0..REPS as u64).map(|s| one_run(noise, s * 3001 + 5)).sum()
}

fn average_coverage<F>(noise: Noise, reps: u64, mut one_run: F) -> f64
where
    F: FnMut(Noise, u64) -> f64,
{
    (0..reps).map(|s| one_run(noise, s * 3001 + 5)).sum::<f64>() / reps as f64
}

fn cqr_covered(noise: Noise, seed: u64) -> usize {
    let (x_tr, y_tr) = draw(N_TRAIN, noise, seed);
    let (x_ca, y_ca) = draw(N_CAL, noise, seed + 1);
    let (x_te, y_te) = draw(N_TEST, noise, seed + 2);
    let mut cqr = Cqr::new(
        QuantileLinear::new(ALPHA / 2.0).with_training(300, 0.02),
        QuantileLinear::new(1.0 - ALPHA / 2.0).with_training(300, 0.02),
        ALPHA,
    );
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    covered_count(&cqr.predict_intervals(&x_te).unwrap(), &y_te)
}

fn split_cp_covered(noise: Noise, seed: u64) -> usize {
    let (x_tr, y_tr) = draw(N_TRAIN, noise, seed);
    let (x_ca, y_ca) = draw(N_CAL, noise, seed + 1);
    let (x_te, y_te) = draw(N_TEST, noise, seed + 2);
    let mut cp = SplitConformal::new(LinearRegression::new(), ALPHA);
    cp.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    covered_count(&cp.predict_intervals(&x_te).unwrap(), &y_te)
}

/// Two-sided acceptance region for the [`REPS`]-rep total covered count of
/// a symmetric conformal method with [`N_CAL`] calibration scores: per rep
/// the count is BetaBin(N_TEST, k, N_CAL+1−k) with k = ⌈(N_CAL+1)(1−α)⌉,
/// and independent reps convolve.
fn symmetric_acceptance() -> (usize, usize) {
    let per_rep = binomial::covered_pmf(N_TEST, N_CAL, ALPHA);
    let sum = binomial::iid_sum_pmf(&per_rep, REPS);
    binomial::two_sided_acceptance(&sum, DELTA)
}

#[test]
fn cqr_guarantee_holds_across_distributions() {
    // Each family's assertion fails with probability ≤ DELTA under the
    // exact law; the union over the four families stays below 4·DELTA.
    let (lo, hi) = symmetric_acceptance();
    let n_total = REPS * N_TEST;
    for noise in ALL_NOISE {
        let covered = total_covered(noise, cqr_covered);
        assert!(
            (lo..=hi).contains(&covered),
            "{noise:?}: CQR covered {covered}/{n_total} outside the exact \
             finite-sample acceptance region [{lo}, {hi}] \
             (BetaBin with ncal={N_CAL}, α={ALPHA}, {REPS} reps, δ={DELTA:e})"
        );
    }
}

fn served_cqr_covered(noise: Noise, seed: u64) -> usize {
    // The deployment path end to end: fit + calibrate live, snapshot to
    // `vmin-artifact/v1` bytes, reload, and count coverage of the *served*
    // intervals. Serving is bit-identical to the live path (see
    // serve_equivalence.rs), so the reloaded artifact inherits the same
    // exact finite-sample law — which this cell asserts directly.
    use cqr_vmin::models::{GradientBoost, GradientBoostParams, TreeParams};
    use cqr_vmin::serve::ServeModel;

    let (x_tr, y_tr) = draw(N_TRAIN, noise, seed);
    let (x_ca, y_ca) = draw(N_CAL, noise, seed + 1);
    let (x_te, y_te) = draw(N_TEST, noise, seed + 2);
    let params = GradientBoostParams {
        n_rounds: 15,
        tree: TreeParams {
            max_depth: 3,
            ..TreeParams::default()
        },
        ..GradientBoostParams::default()
    };
    let mut cqr = Cqr::new(
        GradientBoost::with_params(cqr_vmin::models::Loss::Pinball(ALPHA / 2.0), params),
        GradientBoost::with_params(cqr_vmin::models::Loss::Pinball(1.0 - ALPHA / 2.0), params),
        ALPHA,
    );
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let bytes = ServeModel::from_gbt_cqr(&cqr, None).unwrap().to_bytes();
    let reloaded = ServeModel::from_bytes(&bytes).unwrap();
    covered_count(&reloaded.serve_batch(&x_te, 16).unwrap(), &y_te)
}

#[test]
fn served_artifact_carries_the_same_coverage_guarantee() {
    // The guarantee must survive the save → load → serve_batch path: the
    // covered count of intervals served from reloaded artifact bytes obeys
    // the identical Beta-Binomial acceptance region as the live CQR pair.
    let (lo, hi) = symmetric_acceptance();
    let n_total = REPS * N_TEST;
    for noise in ALL_NOISE {
        let covered = total_covered(noise, served_cqr_covered);
        assert!(
            (lo..=hi).contains(&covered),
            "{noise:?}: served artifact covered {covered}/{n_total} outside \
             the exact finite-sample acceptance region [{lo}, {hi}]"
        );
    }
}

#[test]
fn split_cp_guarantee_holds_across_distributions() {
    // Split CP's absolute-residual score obeys the same rank law, so the
    // acceptance region is identical to CQR's.
    let (lo, hi) = symmetric_acceptance();
    let n_total = REPS * N_TEST;
    for noise in ALL_NOISE {
        let covered = total_covered(noise, split_cp_covered);
        assert!(
            (lo..=hi).contains(&covered),
            "{noise:?}: split CP covered {covered}/{n_total} outside the \
             exact finite-sample acceptance region [{lo}, {hi}]"
        );
    }
}

fn raw_qr_run(noise: Noise, seed: u64) -> f64 {
    // Deliberately small training set: raw QR's training-data coverage does
    // not transfer to test data (Table I: "coverage guarantee for test
    // data" = ✗ for QR).
    let (x_tr, y_tr) = draw(20, noise, seed);
    let (x_te, y_te) = draw(N_TEST, noise, seed + 2);
    let mut lo = QuantileLinear::new(0.1).with_training(300, 0.02);
    let mut hi = QuantileLinear::new(0.9).with_training(300, 0.02);
    lo.fit(&x_tr, &y_tr).unwrap();
    hi.fit(&x_tr, &y_tr).unwrap();
    let ivs: Vec<PredictionInterval> = (0..x_te.rows())
        .map(|i| {
            PredictionInterval::new(
                lo.predict_row(x_te.row(i)).unwrap(),
                hi.predict_row(x_te.row(i)).unwrap(),
            )
        })
        .collect();
    evaluate_intervals(&ivs, &y_te).coverage
}

#[test]
fn raw_qr_has_no_test_coverage_guarantee() {
    // At least one distribution family must show material undercoverage —
    // this is precisely why the paper conformalizes.
    let mut worst = 1.0f64;
    for noise in ALL_NOISE {
        worst = worst.min(average_coverage(noise, REPS as u64, raw_qr_run));
    }
    assert!(
        worst < 0.8,
        "raw QR unexpectedly met the target everywhere (worst {worst:.3}); \
         the no-guarantee row of Table I should be demonstrable"
    );
}

fn ensemble_run(noise: Noise, seed: u64) -> f64 {
    // Table I "Ensemble" row: bootstrap ensemble with Gaussian intervals —
    // distribution-free in training but no test-data coverage guarantee.
    let (x_tr, y_tr) = draw(110, noise, seed);
    let (x_te, y_te) = draw(N_TEST, noise, seed + 2);
    let mut ens = Ensemble::new(|| Box::new(LinearRegression::new()), 10, seed);
    ens.fit(&x_tr, &y_tr).unwrap();
    let ivs: Vec<PredictionInterval> = (0..x_te.rows())
        .map(|i| {
            let (lo, hi) = ens.predict_interval(x_te.row(i), 0.2).unwrap();
            PredictionInterval::new(lo, hi)
        })
        .collect();
    evaluate_intervals(&ivs, &y_te).coverage
}

#[test]
fn ensemble_has_no_coverage_guarantee() {
    // The Gaussian-interval assumption breaks on at least one distribution
    // family (heavy tails in particular) — the ✗ in Table I's third row.
    let mut worst = 1.0f64;
    for noise in ALL_NOISE {
        worst = worst.min(average_coverage(noise, REPS as u64, ensemble_run));
    }
    assert!(
        worst < 0.8,
        "ensemble intervals unexpectedly met the target everywhere (worst {worst:.3})"
    );
}

#[test]
fn asymmetric_cqr_also_carries_the_guarantee() {
    // Asymmetric CQR calibrates each side at α/2, so each side's *miss*
    // count per rep is BetaBin(N_TEST, ncal+1−k', k') with
    // k' = ⌈(ncal+1)(1−α/2)⌉. A test point misses on at most one side, so
    // total misses = lower misses + upper misses exactly, and:
    //   upper: P(total > 2t) ≤ P(S_lo > t) + P(S_hi > t)      (union bound)
    //   lower: P(total < t)  ≤ P(S_lo < t)                     (S_hi ≥ 0)
    // Both bounds are distribution-free; no independence between the two
    // sides is assumed.
    let k_side = binomial::conformal_rank(N_CAL, ALPHA / 2.0);
    assert!(
        k_side <= N_CAL,
        "calibration set too small for α/2 per side"
    );
    let side_miss = binomial::beta_binomial_pmf(N_TEST, (N_CAL + 1 - k_side) as f64, k_side as f64);
    let side_sum = binomial::iid_sum_pmf(&side_miss, REPS);
    let t_up = binomial::upper_acceptance(&side_sum, DELTA / 4.0);
    let t_lo = binomial::lower_acceptance(&side_sum, DELTA / 2.0);
    let n_total = REPS * N_TEST;

    for noise in ALL_NOISE {
        let covered = total_covered(noise, |noise, seed| {
            let (x_tr, y_tr) = draw(N_TRAIN, noise, seed);
            let (x_ca, y_ca) = draw(N_CAL, noise, seed + 1);
            let (x_te, y_te) = draw(N_TEST, noise, seed + 2);
            let mut cqr = CqrAsymmetric::new(
                QuantileLinear::new(ALPHA / 2.0).with_training(300, 0.02),
                QuantileLinear::new(1.0 - ALPHA / 2.0).with_training(300, 0.02),
                ALPHA,
            );
            cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
            covered_count(&cqr.predict_intervals(&x_te).unwrap(), &y_te)
        });
        let missed = n_total - covered;
        assert!(
            missed <= 2 * t_up,
            "{noise:?}: asymmetric CQR missed {missed}/{n_total}, above the \
             per-side union bound 2·{t_up} (k'={k_side}, δ={DELTA:e})"
        );
        assert!(
            missed >= t_lo,
            "{noise:?}: asymmetric CQR missed only {missed}/{n_total}, below \
             the one-sided lower acceptance {t_lo} — intervals are wider than \
             the finite-sample law allows"
        );
    }
}

#[test]
fn pipeline_cqr_per_cell_coverage_meets_the_finite_sample_bound() {
    // The same guarantee, asserted on the full silicon pipeline for every
    // (read point × temperature) cell of a small campaign. Cell coverage is
    // the mean over `cfg.folds` CV folds; within a fold the calibration and
    // test chips are disjoint iid draws, so the fold's covered count is
    // BetaBin(fold_test, k, ncal+1−k) with sizes derived from the config
    // exactly as `flow.rs` derives them. The per-cell bound convolves the
    // folds; that treats folds as independent (they share training rows,
    // and feature scaling/CFS see the calibration rows), which is an
    // approximation — the generous δ absorbs the weak coupling. The upper
    // tail is vacuous at these sizes (an all-covered cell has probability
    // ≈ 0.43 per fold), so only the lower bound is asserted; vmin's
    // discretized voltage grid can only make coverage stochastically
    // larger, which keeps the lower bound valid.
    use cqr_vmin::core::{run_region_cell, ExperimentConfig, FeatureSet, PointModel, RegionMethod};
    use cqr_vmin::silicon::{Campaign, DatasetSpec};

    let spec = DatasetSpec::small();
    let campaign = Campaign::run(&spec, 11);
    let cfg = ExperimentConfig::fast();

    let n = campaign.chip_count();
    assert_eq!(n % cfg.folds, 0, "equal fold sizes assumed below");
    let fold_test = n / cfg.folds;
    let train_len = n - fold_test;
    // Mirror flow.rs: train_test_split(train_len, 1 − cal_fraction, seed).
    let n_proper =
        (((1.0 - cfg.cal_fraction) * train_len as f64).ceil() as usize).clamp(1, train_len - 1);
    let ncal = train_len - n_proper;
    let k = binomial::conformal_rank(ncal, cfg.alpha);
    let fold_pmf = binomial::covered_pmf(fold_test, ncal, cfg.alpha);
    let cell_pmf = binomial::iid_sum_pmf(&fold_pmf, cfg.folds);
    let lo = binomial::lower_acceptance(&cell_pmf, DELTA);
    assert!(
        lo * 2 > n,
        "derived bound is too weak to be meaningful: {lo}/{n} \
         (ncal={ncal}, k={k}) — config drifted?"
    );

    for rp in 0..campaign.read_points.len() {
        for temp in 0..campaign.temperatures.len() {
            let eval = run_region_cell(
                &campaign,
                rp,
                temp,
                RegionMethod::Cqr(PointModel::Linear),
                FeatureSet::OnChip,
                &cfg,
            )
            .expect("region cell");
            // coverage is the mean of equal-sized fold coverages, so this
            // recovers the integer covered count exactly.
            let covered = (eval.coverage * n as f64).round() as usize;
            assert!(
                covered >= lo,
                "cell (read point {rp}, temp {temp}): covered {covered}/{n} \
                 below the finite-sample lower acceptance {lo} \
                 (per fold BetaBin({fold_test}, {k}, {}), {} folds, δ={DELTA:e})",
                ncal + 1 - k,
                cfg.folds,
            );
        }
    }
}

#[test]
fn adaptive_stream_holds_coverage_under_drift_where_static_cqr_fails() {
    // The streaming robustness claim, pinned to the same exact law as the
    // batch guarantees. After a mid-stream drift fault breaks
    // exchangeability, the *frozen* production-test calibration has no
    // guarantee left — its covered count demonstrably leaves the
    // Beta-Binomial acceptance region its own calibration size implies. The
    // adaptive layer (rolling window + ACI + recalibration ladder) must
    // keep its post-drift covered count above an exact-law floor instead.
    //
    // Two honest caveats, reflected in how the bounds are used:
    //   * Adaptivity itself breaks exchangeability, so no exact law applies
    //     to the adaptive tally. The floor below is the lower acceptance of
    //     the Beta-Binomial at the *smallest* calibration window the layer
    //     is permitted to run with (`min_window`) — the widest, most
    //     conservative law in its operating range — asserted per read point
    //     and over the post-drift aggregate.
    //   * Widened/recalibrating intervals legitimately over-cover, so only
    //     lower bounds are asserted for the adaptive tally.
    use cqr_vmin::conformal::{with_adaptive, AdaptiveConfig, LadderState};
    use cqr_vmin::core::{run_stream, FeatureSet, StreamConfig};
    use cqr_vmin::silicon::{Campaign, DatasetSpec, DriftClass, DriftFault, DriftInjector};

    const STREAM_ALPHA: f64 = 0.2;
    const ONSET: usize = 3;

    // A larger fleet than `small()` so the per-read-point counts carry
    // statistical power (120 chips → 48 evaluation chips per read point).
    let spec = DatasetSpec {
        chip_count: 120,
        ..DatasetSpec::small()
    };
    let clean = Campaign::run(&spec, 17);

    // Mirror streaming.rs's two seeded splits to recover the static
    // calibration size exactly (fleet pool, then pool → proper/cal).
    let n = clean.chip_count();
    let fleet_train = ((0.6 * n as f64).ceil() as usize).clamp(1, n - 1);
    let n_eval = n - fleet_train;
    let n_proper = ((0.6 * fleet_train as f64).ceil() as usize).clamp(1, fleet_train - 1);
    let ncal_static = fleet_train - n_proper;

    // Moderate fleet-wide magnitudes: enough to force recalibration, far
    // from the terminal Rejecting valve (which would stop issuing
    // intervals; that regime is covered in failure_injection.rs).
    let cases = [
        (DriftClass::SuddenShift, 60.0, FeatureSet::Both),
        (DriftClass::Ramp, 20.0, FeatureSet::Both),
        (DriftClass::VarianceBlowup, 70.0, FeatureSet::Both),
        (DriftClass::SensorDropout, 0.0, FeatureSet::OnChip),
    ];

    let min_window = AdaptiveConfig::for_alpha(STREAM_ALPHA).min_window;
    let adaptive_rp_lo = binomial::lower_acceptance(
        &binomial::covered_pmf(n_eval, min_window, STREAM_ALPHA),
        DELTA,
    );
    let static_rp_lo = binomial::lower_acceptance(
        &binomial::covered_pmf(n_eval, ncal_static, STREAM_ALPHA),
        DELTA,
    );

    with_adaptive(true, || {
        for (class, magnitude_mv, feature_set) in cases {
            let (drifted, ledger) = DriftInjector::new(
                vec![DriftFault {
                    class,
                    onset: ONSET,
                    magnitude_mv,
                    fraction: 1.0,
                }],
                3,
            )
            .unwrap()
            .inject(&clean);
            assert!(ledger.total() > 0, "{class}: nothing injected");

            let cfg = StreamConfig {
                feature_set,
                ..StreamConfig::fast(STREAM_ALPHA)
            };
            let report = run_stream(&drifted, &cfg).unwrap();
            assert_eq!(report.eval_chips, n_eval, "{class}: split drifted");
            assert_ne!(
                report.worst_state,
                LadderState::Rejecting,
                "{class}: magnitude {magnitude_mv} was meant to stay below the \
                 terminal valve"
            );

            let post = &report.per_read_point[ONSET..];
            let n_post = post.len();
            assert!(n_post >= 2, "campaign too short to observe the drift");

            // Adaptive: every post-drift read point stays above the
            // conservative exact-law floor…
            let mut adaptive_total = 0;
            for stats in post {
                assert_eq!(
                    stats.issued, stats.n,
                    "{class} rp {}: intervals were withheld",
                    stats.read_point
                );
                assert!(
                    stats.covered >= adaptive_rp_lo,
                    "{class} rp {}: adaptive covered {}/{} under the \
                     finite-sample floor {adaptive_rp_lo} \
                     (BetaBin at ncal={min_window}, δ={DELTA:e})",
                    stats.read_point,
                    stats.covered,
                    stats.issued,
                );
                adaptive_total += stats.covered;
            }
            // …and the post-drift aggregate clears the convolved floor,
            // which is much tighter than the per-read-point one.
            let agg_pmf = binomial::iid_sum_pmf(
                &binomial::covered_pmf(n_eval, min_window, STREAM_ALPHA),
                n_post,
            );
            let agg_lo = binomial::lower_acceptance(&agg_pmf, DELTA);
            assert!(
                adaptive_total >= agg_lo,
                "{class}: adaptive covered {adaptive_total}/{} post-drift, \
                 under the aggregate floor {agg_lo}",
                n_post * n_eval,
            );

            // Static: the frozen calibration must demonstrably leave its own
            // acceptance region at one or more post-drift read points —
            // this is the exchangeability break the adaptive layer exists
            // to absorb.
            let static_failures = post
                .iter()
                .filter(|stats| stats.static_covered < static_rp_lo)
                .count();
            assert!(
                static_failures >= 1,
                "{class}: static CQR never left its acceptance region \
                 (floor {static_rp_lo} at ncal={ncal_static}) — the drift \
                 fault is too weak to demonstrate anything"
            );
        }
    });
}

#[test]
fn cqr_adapts_but_split_cp_does_not() {
    // Table I "adaptation to heteroscedasticity": CQR ✓, CP ✗.
    let (x_tr, y_tr) = draw(150, Noise::Hetero, 1);
    let (x_ca, y_ca) = draw(80, Noise::Hetero, 2);
    let mut cqr = Cqr::new(
        QuantileLinear::new(0.1).with_training(400, 0.02),
        QuantileLinear::new(0.9).with_training(400, 0.02),
        0.2,
    );
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let mut cp = SplitConformal::new(LinearRegression::new(), 0.2);
    cp.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();

    let w = |iv: PredictionInterval| iv.length();
    let cqr_ratio =
        w(cqr.predict_interval(&[3.9]).unwrap()) / w(cqr.predict_interval(&[0.1]).unwrap());
    let cp_ratio =
        w(cp.predict_interval(&[3.9]).unwrap()) / w(cp.predict_interval(&[0.1]).unwrap());
    assert!(
        cqr_ratio > 1.5,
        "CQR width should grow with the noise (ratio {cqr_ratio:.2})"
    );
    assert!(
        (cp_ratio - 1.0).abs() < 1e-9,
        "split CP width must be constant (ratio {cp_ratio:.2})"
    );
}
