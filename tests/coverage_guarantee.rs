//! Table I, demonstrated: the properties the paper tabulates for each
//! uncertainty-quantification method, verified empirically across
//! distribution shapes — the "distribution-free coverage guarantee" row in
//! particular.

use cqr_vmin::conformal::{
    evaluate_intervals, Cqr, CqrAsymmetric, PredictionInterval, SplitConformal,
};
use cqr_vmin::linalg::Matrix;
use cqr_vmin::models::{Ensemble, LinearRegression, QuantileLinear, Regressor};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;

/// Families of noise distributions — the guarantee must hold for all of
/// them without modification (distribution-freeness).
#[derive(Clone, Copy, Debug)]
enum Noise {
    Uniform,
    /// Heavy-tailed: Student-t-like via ratio of normals.
    HeavyTail,
    /// Asymmetric: exponential.
    Skewed,
    /// Heteroscedastic uniform.
    Hetero,
}

fn draw(n: usize, noise: Noise, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen_range(0.0..4.0);
        let eps = match noise {
            Noise::Uniform => rng.gen_range(-1.0..1.0),
            Noise::HeavyTail => {
                let a: f64 = rng.gen_range(-1.0..1.0f64);
                let b: f64 = rng.gen_range(0.3..1.0);
                (a / b).clamp(-8.0, 8.0)
            }
            Noise::Skewed => -(1.0 - rng.gen::<f64>()).ln() - 1.0,
            Noise::Hetero => (0.2 + x) * rng.gen_range(-1.0..1.0),
        };
        rows.push(vec![x]);
        y.push(3.0 * x + eps);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn average_coverage<F>(noise: Noise, reps: u64, mut one_run: F) -> f64
where
    F: FnMut(Noise, u64) -> f64,
{
    (0..reps).map(|s| one_run(noise, s * 3001 + 5)).sum::<f64>() / reps as f64
}

fn cqr_run(noise: Noise, seed: u64) -> f64 {
    let (x_tr, y_tr) = draw(70, noise, seed);
    let (x_ca, y_ca) = draw(40, noise, seed + 1);
    let (x_te, y_te) = draw(60, noise, seed + 2);
    let mut cqr = Cqr::new(
        QuantileLinear::new(0.1).with_training(300, 0.02),
        QuantileLinear::new(0.9).with_training(300, 0.02),
        0.2,
    );
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    evaluate_intervals(&cqr.predict_intervals(&x_te).unwrap(), &y_te).coverage
}

fn split_cp_run(noise: Noise, seed: u64) -> f64 {
    let (x_tr, y_tr) = draw(70, noise, seed);
    let (x_ca, y_ca) = draw(40, noise, seed + 1);
    let (x_te, y_te) = draw(60, noise, seed + 2);
    let mut cp = SplitConformal::new(LinearRegression::new(), 0.2);
    cp.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    evaluate_intervals(&cp.predict_intervals(&x_te).unwrap(), &y_te).coverage
}

fn raw_qr_run(noise: Noise, seed: u64) -> f64 {
    // Deliberately small training set: raw QR's training-data coverage does
    // not transfer to test data (Table I: "coverage guarantee for test
    // data" = ✗ for QR).
    let (x_tr, y_tr) = draw(20, noise, seed);
    let (x_te, y_te) = draw(60, noise, seed + 2);
    let mut lo = QuantileLinear::new(0.1).with_training(300, 0.02);
    let mut hi = QuantileLinear::new(0.9).with_training(300, 0.02);
    lo.fit(&x_tr, &y_tr).unwrap();
    hi.fit(&x_tr, &y_tr).unwrap();
    let ivs: Vec<PredictionInterval> = (0..x_te.rows())
        .map(|i| {
            PredictionInterval::new(
                lo.predict_row(x_te.row(i)).unwrap(),
                hi.predict_row(x_te.row(i)).unwrap(),
            )
        })
        .collect();
    evaluate_intervals(&ivs, &y_te).coverage
}

#[test]
fn cqr_guarantee_holds_across_distributions() {
    for noise in [
        Noise::Uniform,
        Noise::HeavyTail,
        Noise::Skewed,
        Noise::Hetero,
    ] {
        let cov = average_coverage(noise, 12, cqr_run);
        assert!(
            cov >= 0.8 - 0.06,
            "{noise:?}: CQR average coverage {cov:.3} below 1−α tolerance"
        );
    }
}

#[test]
fn split_cp_guarantee_holds_across_distributions() {
    for noise in [
        Noise::Uniform,
        Noise::HeavyTail,
        Noise::Skewed,
        Noise::Hetero,
    ] {
        let cov = average_coverage(noise, 12, split_cp_run);
        assert!(
            cov >= 0.8 - 0.06,
            "{noise:?}: split CP average coverage {cov:.3} below tolerance"
        );
    }
}

#[test]
fn raw_qr_has_no_test_coverage_guarantee() {
    // At least one distribution family must show material undercoverage —
    // this is precisely why the paper conformalizes.
    let mut worst = 1.0f64;
    for noise in [
        Noise::Uniform,
        Noise::HeavyTail,
        Noise::Skewed,
        Noise::Hetero,
    ] {
        worst = worst.min(average_coverage(noise, 12, raw_qr_run));
    }
    assert!(
        worst < 0.8,
        "raw QR unexpectedly met the target everywhere (worst {worst:.3}); \
         the no-guarantee row of Table I should be demonstrable"
    );
}

fn ensemble_run(noise: Noise, seed: u64) -> f64 {
    // Table I "Ensemble" row: bootstrap ensemble with Gaussian intervals —
    // distribution-free in training but no test-data coverage guarantee.
    let (x_tr, y_tr) = draw(110, noise, seed);
    let (x_te, y_te) = draw(60, noise, seed + 2);
    let mut ens = Ensemble::new(|| Box::new(LinearRegression::new()), 10, seed);
    ens.fit(&x_tr, &y_tr).unwrap();
    let ivs: Vec<PredictionInterval> = (0..x_te.rows())
        .map(|i| {
            let (lo, hi) = ens.predict_interval(x_te.row(i), 0.2).unwrap();
            PredictionInterval::new(lo, hi)
        })
        .collect();
    evaluate_intervals(&ivs, &y_te).coverage
}

#[test]
fn ensemble_has_no_coverage_guarantee() {
    // The Gaussian-interval assumption breaks on at least one distribution
    // family (heavy tails in particular) — the ✗ in Table I's third row.
    let mut worst = 1.0f64;
    for noise in [
        Noise::Uniform,
        Noise::HeavyTail,
        Noise::Skewed,
        Noise::Hetero,
    ] {
        worst = worst.min(average_coverage(noise, 12, ensemble_run));
    }
    assert!(
        worst < 0.8,
        "ensemble intervals unexpectedly met the target everywhere (worst {worst:.3})"
    );
}

#[test]
fn asymmetric_cqr_also_carries_the_guarantee() {
    for noise in [
        Noise::Uniform,
        Noise::HeavyTail,
        Noise::Skewed,
        Noise::Hetero,
    ] {
        let cov = average_coverage(noise, 12, |noise, seed| {
            let (x_tr, y_tr) = draw(70, noise, seed);
            let (x_ca, y_ca) = draw(40, noise, seed + 1);
            let (x_te, y_te) = draw(60, noise, seed + 2);
            let mut cqr = CqrAsymmetric::new(
                QuantileLinear::new(0.1).with_training(300, 0.02),
                QuantileLinear::new(0.9).with_training(300, 0.02),
                0.2,
            );
            cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
            evaluate_intervals(&cqr.predict_intervals(&x_te).unwrap(), &y_te).coverage
        });
        assert!(
            cov >= 0.8 - 0.06,
            "{noise:?}: asymmetric CQR average coverage {cov:.3} below tolerance"
        );
    }
}

#[test]
fn cqr_adapts_but_split_cp_does_not() {
    // Table I "adaptation to heteroscedasticity": CQR ✓, CP ✗.
    let (x_tr, y_tr) = draw(150, Noise::Hetero, 1);
    let (x_ca, y_ca) = draw(80, Noise::Hetero, 2);
    let mut cqr = Cqr::new(
        QuantileLinear::new(0.1).with_training(400, 0.02),
        QuantileLinear::new(0.9).with_training(400, 0.02),
        0.2,
    );
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let mut cp = SplitConformal::new(LinearRegression::new(), 0.2);
    cp.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();

    let w = |iv: PredictionInterval| iv.length();
    let cqr_ratio =
        w(cqr.predict_interval(&[3.9]).unwrap()) / w(cqr.predict_interval(&[0.1]).unwrap());
    let cp_ratio =
        w(cp.predict_interval(&[3.9]).unwrap()) / w(cp.predict_interval(&[0.1]).unwrap());
    assert!(
        cqr_ratio > 1.5,
        "CQR width should grow with the noise (ratio {cqr_ratio:.2})"
    );
    assert!(
        (cp_ratio - 1.0).abs() < 1e-9,
        "split CP width must be constant (ratio {cp_ratio:.2})"
    );
}
