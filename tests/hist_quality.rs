//! Interval-quality contract of histogram-binned boosting (PR 7): CQR
//! built on binned quantile pairs is *statistically* interchangeable with
//! CQR on exact pairs, even though the underlying fits are not
//! bit-identical.
//!
//! The conformal coverage guarantee is distribution-free **and
//! model-free**: calibration repairs whatever the base learner does, so
//! both the exact and the binned pairs must land in the same exact
//! Beta-Binomial acceptance region (see `support/binomial.rs`) — no
//! hand-tuned tolerances. Width is where a bad approximation would show
//! up (binning that degrades the quantile fits widens calibrated
//! intervals), so the mean widths of the two paths must also stay within
//! a modest ratio of each other.

#[path = "support/binomial.rs"]
mod binomial;

use cqr_vmin::conformal::{Cqr, PredictionInterval};
use cqr_vmin::linalg::Matrix;
use cqr_vmin::models::{
    with_histograms, GradientBoost, GradientBoostParams, Loss, ObliviousBoost,
    ObliviousBoostParams, Regressor,
};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;

const ALPHA: f64 = 0.1;
const N_TRAIN: usize = 70;
const N_CAL: usize = 40;
const N_TEST: usize = 60;
const REPS: usize = 10;
/// Per-assertion failure probability under the exact finite-sample law.
const DELTA: f64 = 1e-6;

/// Heteroscedastic data — the regime CQR exists for.
fn draw(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen_range(0.0..4.0);
        let eps = (0.2 + x) * rng.gen_range(-1.0..1.0);
        rows.push(vec![x]);
        y.push(3.0 * x + eps);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

enum Booster {
    Xgb,
    Cat,
}

fn quantile_pair(booster: &Booster, q: f64) -> Box<dyn Regressor> {
    match booster {
        Booster::Xgb => {
            let params = GradientBoostParams {
                n_rounds: 30,
                ..GradientBoostParams::default()
            };
            Box::new(GradientBoost::with_params(Loss::Pinball(q), params))
        }
        Booster::Cat => {
            let params = ObliviousBoostParams {
                n_rounds: 30,
                ..ObliviousBoostParams::default()
            };
            Box::new(ObliviousBoost::with_params(Loss::Pinball(q), params))
        }
    }
}

/// One CQR run: returns `(covered count, mean width)` on the test split.
fn cqr_run(booster: &Booster, hist_on: bool, seed: u64) -> (usize, f64) {
    with_histograms(hist_on, || {
        let (x_tr, y_tr) = draw(N_TRAIN, seed);
        let (x_ca, y_ca) = draw(N_CAL, seed + 1);
        let (x_te, y_te) = draw(N_TEST, seed + 2);
        let mut cqr = Cqr::new(
            quantile_pair(booster, ALPHA / 2.0),
            quantile_pair(booster, 1.0 - ALPHA / 2.0),
            ALPHA,
        );
        cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
        let intervals: Vec<PredictionInterval> = cqr.predict_intervals(&x_te).unwrap();
        let covered = intervals
            .iter()
            .zip(&y_te)
            .filter(|(iv, yi)| iv.contains(**yi))
            .count();
        let mean_width =
            intervals.iter().map(|iv| iv.hi() - iv.lo()).sum::<f64>() / intervals.len() as f64;
        (covered, mean_width)
    })
}

fn acceptance() -> (usize, usize) {
    let per_rep = binomial::covered_pmf(N_TEST, N_CAL, ALPHA);
    let sum = binomial::iid_sum_pmf(&per_rep, REPS);
    binomial::two_sided_acceptance(&sum, DELTA)
}

fn totals(booster: &Booster, hist_on: bool) -> (usize, f64) {
    let mut covered = 0usize;
    let mut width = 0.0f64;
    for s in 0..REPS as u64 {
        let (c, w) = cqr_run(booster, hist_on, s * 3001 + 5);
        covered += c;
        width += w;
    }
    (covered, width / REPS as f64)
}

#[test]
fn binned_and_exact_cqr_both_hold_the_coverage_guarantee() {
    // Four configs × the same exact acceptance region; union failure
    // probability ≤ 4·DELTA.
    let (lo, hi) = acceptance();
    let n_total = REPS * N_TEST;
    for booster in [Booster::Xgb, Booster::Cat] {
        let label = match booster {
            Booster::Xgb => "CQR-XGBoost",
            Booster::Cat => "CQR-CatBoost",
        };
        let mut widths = [0.0f64; 2];
        for hist_on in [false, true] {
            let (covered, mean_width) = totals(&booster, hist_on);
            assert!(
                (lo..=hi).contains(&covered),
                "{label} hist={hist_on}: covered {covered}/{n_total} outside \
                 the exact acceptance region [{lo}, {hi}] \
                 (BetaBin ncal={N_CAL}, α={ALPHA}, {REPS} reps, δ={DELTA:e})"
            );
            assert!(
                mean_width.is_finite() && mean_width > 0.0,
                "{label} hist={hist_on}: degenerate mean width {mean_width}"
            );
            widths[usize::from(hist_on)] = mean_width;
        }
        // Binning with 255-border GBT tables / 32-border oblivious tables
        // is a fine approximation: calibrated widths must stay comparable.
        let ratio = widths[1] / widths[0];
        assert!(
            (0.6..=1.67).contains(&ratio),
            "{label}: binned/exact mean-width ratio {ratio:.3} \
             (binned {:.3} vs exact {:.3}) outside [0.6, 1.67]",
            widths[1],
            widths[0]
        );
    }
}
