//! Cross-crate integration tests: simulator → feature assembly → models →
//! conformal calibration → evaluation, exercised through the facade crate.

use cqr_vmin::core::{
    assemble_dataset, eval_region_fold, monitor_read_points, run_point_cell, run_region_cell,
    ExperimentConfig, FeatureSet, ModelConfig, PointModel, RegionMethod, VminPredictor,
};
use cqr_vmin::data::{train_test_split, KFold};
use cqr_vmin::silicon::{Campaign, DatasetSpec};

fn campaign() -> Campaign {
    Campaign::run(&DatasetSpec::small(), 2024)
}

#[test]
fn full_pipeline_time0_point_prediction() {
    let c = campaign();
    let cfg = ExperimentConfig::fast();
    let eval = run_point_cell(&c, 0, 1, PointModel::Linear, FeatureSet::Both, &cfg).unwrap();
    assert!(eval.r2 > 0.3, "time-0 LR R² = {}", eval.r2);
    assert!(eval.rmse < 30.0, "time-0 LR RMSE = {} mV", eval.rmse);
}

#[test]
fn full_pipeline_region_prediction_all_methods_run() {
    let c = campaign();
    let cfg = ExperimentConfig::fast();
    // Every Table III method must run end-to-end on one cell.
    for method in RegionMethod::ALL {
        let eval = run_region_cell(&c, 0, 1, method, FeatureSet::Both, &cfg)
            .unwrap_or_else(|e| panic!("{method}: {e}"));
        assert!(
            eval.mean_length > 0.0 && eval.mean_length.is_finite(),
            "{method}: length {}",
            eval.mean_length
        );
        assert!((0.0..=1.0).contains(&eval.coverage), "{method}");
    }
}

#[test]
fn cqr_outcoverages_qr_on_average() {
    // The paper's central claim: conformalizing QR restores coverage.
    let c = campaign();
    let cfg = ExperimentConfig::fast();
    let mut qr_cov = 0.0;
    let mut cqr_cov = 0.0;
    let cells = [(0, 0), (0, 1), (0, 2), (2, 1)];
    for &(rp, t) in &cells {
        qr_cov += run_region_cell(
            &c,
            rp,
            t,
            RegionMethod::Qr(PointModel::Linear),
            FeatureSet::Both,
            &cfg,
        )
        .unwrap()
        .coverage;
        cqr_cov += run_region_cell(
            &c,
            rp,
            t,
            RegionMethod::Cqr(PointModel::Linear),
            FeatureSet::Both,
            &cfg,
        )
        .unwrap()
        .coverage;
    }
    let (qr_cov, cqr_cov) = (qr_cov / cells.len() as f64, cqr_cov / cells.len() as f64);
    assert!(
        cqr_cov >= qr_cov - 0.02,
        "CQR ({cqr_cov:.3}) should not cover less than raw QR ({qr_cov:.3})"
    );
    assert!(cqr_cov > 0.8, "CQR coverage {cqr_cov:.3} too far below 1−α");
}

#[test]
fn degradation_scenario_never_sees_future_monitors() {
    let c = campaign();
    for rp in 1..c.read_points.len() {
        let pts = monitor_read_points(rp);
        assert!(pts.iter().all(|&p| p < rp), "read point {rp} leaks");
        let ds = assemble_dataset(&c, rp, 0, FeatureSet::OnChip).unwrap();
        let per_rp = c.spec.monitors.rod_count + c.spec.monitors.cpd_count;
        assert_eq!(ds.n_features(), pts.len() * per_rp);
    }
}

#[test]
fn predictor_is_deterministic_end_to_end() {
    let c = campaign();
    let ds = assemble_dataset(&c, 0, 1, FeatureSet::Both).unwrap();
    let fit = || {
        VminPredictor::fit(
            &ds,
            RegionMethod::Cqr(PointModel::Linear),
            0.2,
            0.4,
            99,
            &ModelConfig::fast(),
        )
        .unwrap()
    };
    let a = fit();
    let b = fit();
    for i in 0..5 {
        let ia = a.interval(ds.sample(i)).unwrap();
        let ib = b.interval(ds.sample(i)).unwrap();
        assert_eq!(ia.lo(), ib.lo());
        assert_eq!(ia.hi(), ib.hi());
    }
}

#[test]
fn campaign_seed_changes_everything_downstream() {
    let a = Campaign::run(&DatasetSpec::small(), 1);
    let b = Campaign::run(&DatasetSpec::small(), 2);
    let da = assemble_dataset(&a, 0, 1, FeatureSet::Both).unwrap();
    let db = assemble_dataset(&b, 0, 1, FeatureSet::Both).unwrap();
    assert_ne!(da.targets(), db.targets());
}

#[test]
fn region_fold_coverage_guarantee_across_seeds() {
    // Average CQR coverage over several simulated campaigns ≈ ≥ 1 − α.
    // (The guarantee is marginal; averaging reduces the beta-distributed
    // per-run noise.)
    let alpha = 0.2;
    let mut total = 0.0;
    // 16-chip test folds put ~0.1 sd of beta noise on each rep's coverage;
    // 16 reps bring the sd of the average down to ~0.03 so the 0.08
    // tolerance sits >2 sigma from the guarantee.
    let reps = 16;
    for seed in 0..reps {
        let c = Campaign::run(&DatasetSpec::small(), seed * 5000 + 17);
        let ds = assemble_dataset(&c, 0, 1, FeatureSet::Both).unwrap();
        let kf = KFold::new(ds.n_samples(), 4, seed);
        let split = kf.split(0);
        let train = ds.subset_rows(&split.train).unwrap();
        let test = ds.subset_rows(&split.test).unwrap();
        let eval = eval_region_fold(
            RegionMethod::Cqr(PointModel::Linear),
            &ModelConfig::fast(),
            &train,
            &test,
            alpha,
            0.4,
            seed * 31 + 7,
        )
        .unwrap();
        total += eval.coverage;
    }
    let avg = total / reps as f64;
    assert!(
        avg >= 1.0 - alpha - 0.08,
        "average CQR coverage {avg:.3} below tolerance for 1−α = {}",
        1.0 - alpha
    );
}

#[test]
fn spec_screening_flags_worst_chips() {
    // Chips whose measured Vmin is far above the population should be
    // flagged against a min-spec placed near the population's upper tail.
    let c = campaign();
    let ds = assemble_dataset(&c, 0, 0, FeatureSet::Both).unwrap();
    let split = train_test_split(ds.n_samples(), 0.8, 3);
    let train = ds.subset_rows(&split.train).unwrap();
    let predictor = VminPredictor::fit(
        &train,
        RegionMethod::Cqr(PointModel::Linear),
        0.2,
        0.4,
        3,
        &ModelConfig::fast(),
    )
    .unwrap();
    // min-spec at the 90th percentile of training Vmin.
    let spec_mv = cqr_vmin::linalg::quantile(train.targets(), 0.9).unwrap();
    // The chip with the highest true Vmin in the test fold should be at
    // risk; the chip with the lowest should not.
    let test = ds.subset_rows(&split.test).unwrap();
    let hi = (0..test.n_samples())
        .max_by(|&a, &b| test.targets()[a].partial_cmp(&test.targets()[b]).unwrap())
        .unwrap();
    let lo = (0..test.n_samples())
        .min_by(|&a, &b| test.targets()[a].partial_cmp(&test.targets()[b]).unwrap())
        .unwrap();
    if test.targets()[hi] > spec_mv + 5.0 {
        assert!(
            predictor.flags_spec_risk(test.sample(hi), spec_mv).unwrap(),
            "worst chip (Vmin {} vs spec {spec_mv}) not flagged",
            test.targets()[hi]
        );
    }
    assert!(
        !predictor
            .flags_spec_risk(test.sample(lo), spec_mv + 50.0)
            .unwrap(),
        "best chip flagged against a generous spec"
    );
}
