//! Workspace-level determinism guarantees of the `vmin-par` threading layer:
//! the full simulate → assemble → fit → predict pipeline must be
//! bit-identical at every thread count, and `par_map` must preserve input
//! order and propagate worker panics.
//!
//! `ci.sh` additionally runs the whole tier-1 suite under `VMIN_THREADS=1`
//! and under the default pool, covering the environment-variable override
//! path that `with_threads` bypasses.

use cqr_vmin::core::{
    assemble_dataset, ExperimentConfig, FeatureSet, ModelConfig, PointModel, RegionMethod,
    VminPredictor,
};
use cqr_vmin::core::{run_feature_set_study, run_region_cell};
use cqr_vmin::silicon::{Campaign, DatasetSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    let serial = vmin_par::with_threads(1, || Campaign::run(&DatasetSpec::small(), 2024));
    for threads in [2, 8] {
        let par = vmin_par::with_threads(threads, || Campaign::run(&DatasetSpec::small(), 2024));
        assert_eq!(par, serial, "campaign diverged at {threads} threads");
    }
}

#[test]
fn cqr_predictor_is_bit_identical_across_thread_counts() {
    let run_at = |threads: usize| {
        vmin_par::with_threads(threads, || {
            let campaign = Campaign::run(&DatasetSpec::small(), 7);
            let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
            let predictor = VminPredictor::fit(
                &ds,
                RegionMethod::Cqr(PointModel::Linear),
                0.1,
                0.25,
                42,
                &ModelConfig::fast(),
            )
            .unwrap();
            (0..ds.n_samples())
                .map(|i| {
                    let iv = predictor.interval(ds.sample(i)).unwrap();
                    (iv.lo(), iv.hi())
                })
                .collect::<Vec<_>>()
        })
    };
    let serial = run_at(1);
    for threads in [2, 8] {
        assert_eq!(
            run_at(threads),
            serial,
            "CQR intervals diverged at {threads} threads"
        );
    }
}

#[test]
fn region_cell_and_study_are_bit_identical_across_thread_counts() {
    let campaign = Campaign::run(&DatasetSpec::small(), 11);
    let cfg = ExperimentConfig::fast();
    let cell_at = |threads: usize| {
        vmin_par::with_threads(threads, || {
            run_region_cell(
                &campaign,
                0,
                1,
                RegionMethod::Cqr(PointModel::Linear),
                FeatureSet::Both,
                &cfg,
            )
            .unwrap()
        })
    };
    let serial_cell = cell_at(1);
    assert_eq!(cell_at(4), serial_cell);

    let study_at = |threads: usize| {
        vmin_par::with_threads(threads, || {
            run_feature_set_study(&campaign, RegionMethod::Cqr(PointModel::Linear), &cfg).unwrap()
        })
    };
    let serial_study = study_at(1);
    assert_eq!(study_at(4), serial_study);
}

#[test]
fn thread_count_and_tracing_matrix_is_bit_identical() {
    // The full observability contract as a matrix: VMIN_THREADS ∈ {1, 2, 8}
    // × tracing {on, off}. Predictions must be byte-identical in every
    // cell; the merged deterministic metrics (counters, gauges,
    // histograms) must be identical across thread counts when tracing is
    // on — timers and topology counts are the two documented exemptions —
    // and tracing off must record nothing at all.
    let run = |threads: usize, trace_on: bool| {
        let prev = vmin_trace::set_enabled(trace_on);
        let (bits, snap) = vmin_trace::with_collector(|| {
            vmin_par::with_threads(threads, || {
                let campaign = Campaign::run(&DatasetSpec::small(), 7);
                let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
                let predictor = VminPredictor::fit(
                    &ds,
                    RegionMethod::Cqr(PointModel::Linear),
                    0.1,
                    0.25,
                    42,
                    &ModelConfig::fast(),
                )
                .unwrap();
                (0..ds.n_samples())
                    .map(|i| {
                        let iv = predictor.interval(ds.sample(i)).unwrap();
                        (iv.lo().to_bits(), iv.hi().to_bits())
                    })
                    .collect::<Vec<_>>()
            })
        });
        vmin_trace::set_enabled(prev);
        (bits, snap)
    };

    let (ref_bits, ref_snap) = run(1, true);
    assert!(
        !ref_snap.counters.is_empty(),
        "the instrumented pipeline recorded no counters"
    );
    assert!(
        !ref_snap.timers.is_empty(),
        "the instrumented pipeline recorded no span timers"
    );
    for threads in [1usize, 2, 8] {
        for trace_on in [true, false] {
            let (bits, snap) = run(threads, trace_on);
            assert_eq!(
                bits, ref_bits,
                "intervals diverged at threads={threads} trace={trace_on}"
            );
            if trace_on {
                assert_eq!(
                    snap.deterministic_view(),
                    ref_snap.deterministic_view(),
                    "merged counters/gauges/histograms diverged at {threads} threads"
                );
            } else {
                assert!(
                    snap.is_empty(),
                    "tracing off must record nothing (threads={threads}): {snap:?}"
                );
            }
        }
    }
}

#[test]
fn streaming_report_is_bit_identical_across_threads_and_tracing() {
    // The streaming adaptive layer extends the matrix: a full drifted
    // stream (fit, calibrate, drift detection, window flush,
    // recalibration audit) must produce a byte-identical `StreamReport` at
    // VMIN_THREADS ∈ {1, 2, 8} × tracing {on, off}. The report derives
    // PartialEq over raw f64s, so equality here is bit equality for every
    // width, α_t and q̂ the stream produced.
    use cqr_vmin::conformal::with_adaptive;
    use cqr_vmin::core::{run_stream, StreamConfig};
    use cqr_vmin::silicon::{DriftClass, DriftFault, DriftInjector};

    let clean = Campaign::run(&DatasetSpec::small(), 7);
    let (drifted, _) = DriftInjector::new(
        vec![DriftFault {
            class: DriftClass::Ramp,
            onset: 3,
            magnitude_mv: 20.0,
            fraction: 1.0,
        }],
        41,
    )
    .unwrap()
    .inject(&clean);

    with_adaptive(true, || {
        let run = |threads: usize, trace_on: bool| {
            let prev = vmin_trace::set_enabled(trace_on);
            let (report, snap) = vmin_trace::with_collector(|| {
                vmin_par::with_threads(threads, || {
                    run_stream(&drifted, &StreamConfig::fast(0.2)).unwrap()
                })
            });
            vmin_trace::set_enabled(prev);
            (report, snap)
        };

        let (reference, ref_snap) = run(1, true);
        assert!(
            ref_snap
                .counters
                .keys()
                .any(|k| k.starts_with("conformal.adaptive.")),
            "the stream recorded no adaptive-layer counters"
        );
        for threads in [1usize, 2, 8] {
            for trace_on in [true, false] {
                let (report, snap) = run(threads, trace_on);
                assert_eq!(
                    report, reference,
                    "stream report diverged at threads={threads} trace={trace_on}"
                );
                if trace_on {
                    assert_eq!(
                        snap.deterministic_view(),
                        ref_snap.deterministic_view(),
                        "stream metrics diverged at {threads} threads"
                    );
                }
            }
        }
    });
}

#[test]
fn fit_cache_and_thread_count_matrix_is_bit_identical() {
    // PR 5 extends the matrix with the fit-plan cache dimension: the full
    // simulate → assemble → CQR-XGBoost pipeline must be byte-identical at
    // VMIN_THREADS ∈ {1, 2, 8} × fit cache {off, on}. The cache is a pure
    // time optimization; the reference cell is single-threaded + uncached.
    let run = |threads: usize, cache_on: bool| {
        vmin_par::with_threads(threads, || {
            cqr_vmin::models::with_fit_cache(cache_on, || {
                let campaign = Campaign::run(&DatasetSpec::small(), 7);
                let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
                let predictor = VminPredictor::fit(
                    &ds,
                    RegionMethod::Cqr(PointModel::Xgboost),
                    0.1,
                    0.25,
                    42,
                    &ModelConfig::fast(),
                )
                .unwrap();
                (0..ds.n_samples())
                    .map(|i| {
                        let iv = predictor.interval(ds.sample(i)).unwrap();
                        (iv.lo().to_bits(), iv.hi().to_bits())
                    })
                    .collect::<Vec<_>>()
            })
        })
    };
    let reference = run(1, false);
    for threads in [1usize, 2, 8] {
        for cache_on in [false, true] {
            assert_eq!(
                run(threads, cache_on),
                reference,
                "intervals diverged at threads={threads} fit_cache={cache_on}"
            );
        }
    }
}

#[test]
fn hist_split_and_thread_count_matrix_is_bit_identical() {
    // PR 7 extends the matrix with the histogram dimension: the full
    // simulate → assemble → CQR pipeline must be byte-identical at
    // VMIN_THREADS ∈ {1, 2, 8} within each hist setting. Unlike the
    // fit-plan cache, histograms are an *approximation* — hist off is the
    // exact-scan reference, hist on has its own reference, and the two
    // must actually differ (a kill switch wired to nothing would pass the
    // invariance rows vacuously).
    let run = |threads: usize, hist_on: bool, model: PointModel| {
        vmin_par::with_threads(threads, || {
            cqr_vmin::models::with_histograms(hist_on, || {
                let campaign = Campaign::run(&DatasetSpec::small(), 7);
                let ds = assemble_dataset(&campaign, 0, 1, FeatureSet::Both).unwrap();
                let predictor = VminPredictor::fit(
                    &ds,
                    RegionMethod::Cqr(model),
                    0.1,
                    0.25,
                    42,
                    &ModelConfig::fast(),
                )
                .unwrap();
                (0..ds.n_samples())
                    .map(|i| {
                        let iv = predictor.interval(ds.sample(i)).unwrap();
                        (iv.lo().to_bits(), iv.hi().to_bits())
                    })
                    .collect::<Vec<_>>()
            })
        })
    };
    for model in [PointModel::Xgboost, PointModel::CatBoost] {
        let exact = run(1, false, model);
        let binned = run(1, true, model);
        assert_ne!(
            exact, binned,
            "{model:?}: hist on/off produced identical intervals — switch unwired"
        );
        for threads in [2usize, 8] {
            assert_eq!(
                run(threads, false, model),
                exact,
                "{model:?}: exact intervals diverged at {threads} threads"
            );
            assert_eq!(
                run(threads, true, model),
                binned,
                "{model:?}: binned intervals diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn serve_matrix_is_bit_identical_and_artifact_bytes_are_stable() {
    // PR 9 extends the matrix with the serving dimension: a captured
    // ServeModel must produce byte-identical intervals at
    // VMIN_THREADS ∈ {1, 4} × VMIN_SERVE {on, off} × block sizes
    // {1, 5, 32, 1000}, and its `vmin-artifact/v1` encoding must be the
    // same byte string no matter which cell of the matrix produced or
    // reloaded it. The kill switch is pure path selection here (unlike
    // VMIN_HIST there is no "must differ" leg — scalar and batch kernels
    // replay the same IEEE operations).
    use cqr_vmin::conformal::Cqr;
    use cqr_vmin::models::{GradientBoost, Loss};
    use cqr_vmin::serve::{with_serve, ServeModel};
    use vmin_rng::{ChaCha8Rng, Rng, SeedableRng};

    let draw = |n: usize, seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..4.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            rows.push(vec![a, b]);
            y.push(2.0 * a - b + rng.gen_range(-0.5..0.5));
        }
        (cqr_vmin::linalg::Matrix::from_rows(&rows).unwrap(), y)
    };
    let (x_tr, y_tr) = draw(70, 1);
    let (x_ca, y_ca) = draw(40, 2);
    let (x_te, _) = draw(90, 3);
    let mut cqr = Cqr::new(
        GradientBoost::new(Loss::Pinball(0.05)),
        GradientBoost::new(Loss::Pinball(0.95)),
        0.1,
    );
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let model = ServeModel::from_gbt_cqr(&cqr, None).unwrap();
    let ref_bytes = model.to_bytes();

    let run = |threads: usize, serve_on: bool, block: usize| {
        vmin_par::with_threads(threads, || {
            with_serve(serve_on, || {
                let reloaded = ServeModel::from_bytes(&ref_bytes).unwrap();
                assert_eq!(
                    reloaded.to_bytes(),
                    ref_bytes,
                    "artifact bytes drifted at threads={threads} serve={serve_on}"
                );
                reloaded
                    .serve_batch(&x_te, block)
                    .unwrap()
                    .iter()
                    .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
                    .collect::<Vec<_>>()
            })
        })
    };
    let reference = run(1, true, 32);
    for threads in [1usize, 4] {
        for serve_on in [true, false] {
            for block in [1usize, 5, 32, 1000] {
                assert_eq!(
                    run(threads, serve_on, block),
                    reference,
                    "served intervals diverged at threads={threads} \
                     serve={serve_on} block={block}"
                );
            }
        }
    }
}

#[test]
fn stream_matrix_is_bit_identical_across_threads_chunks_and_tracing() {
    // PR 10 extends the matrix with the streaming-generation dimension:
    // the blocks of a `CampaignStream` must be byte-identical at
    // VMIN_THREADS ∈ {1, 2, 8} × VMIN_STREAM {on, off} × chunk {1, 7, 64}
    // × tracing {on, off}. The kill switch materializes through
    // `Campaign::run` and slices — pure path selection — and chunking may
    // move block boundaries but never a single bit of chip data. Merged
    // deterministic metrics must also be thread-invariant within a fixed
    // (stream, chunk) cell (the shard counter is sized by chunk geometry,
    // never by thread count).
    use cqr_vmin::silicon::{with_stream, CampaignStream};

    let spec = DatasetSpec::small();
    let run = |threads: usize, stream_on: bool, chunk: usize, trace_on: bool| {
        let prev = vmin_trace::set_enabled(trace_on);
        let (bits, snap) = vmin_trace::with_collector(|| {
            vmin_par::with_threads(threads, || {
                with_stream(stream_on, || {
                    let mut bits: Vec<u64> = Vec::new();
                    for block in CampaignStream::with_chunk(&spec, 7, chunk) {
                        bits.extend(block.data().iter().map(|v| v.to_bits()));
                    }
                    bits
                })
            })
        });
        vmin_trace::set_enabled(prev);
        (bits, snap)
    };

    let (ref_bits, ref_snap) = run(1, true, 7, true);
    assert!(
        ref_snap
            .counters
            .keys()
            .any(|k| k.starts_with("silicon.stream.")),
        "the streamed run recorded no silicon.stream.* counters"
    );
    for threads in [1usize, 2, 8] {
        for stream_on in [true, false] {
            for chunk in [1usize, 7, 64] {
                for trace_on in [true, false] {
                    let (bits, snap) = run(threads, stream_on, chunk, trace_on);
                    assert_eq!(
                        bits, ref_bits,
                        "stream data diverged at threads={threads} \
                         stream={stream_on} chunk={chunk} trace={trace_on}"
                    );
                    if !trace_on {
                        assert!(
                            snap.is_empty(),
                            "tracing off must record nothing (threads={threads})"
                        );
                    } else if stream_on && chunk == 7 {
                        assert_eq!(
                            snap.deterministic_view(),
                            ref_snap.deterministic_view(),
                            "stream metrics diverged at {threads} threads"
                        );
                    } else if !stream_on {
                        assert!(
                            snap.counters.contains_key("silicon.stream.fallback"),
                            "kill-switch run must count the fallback"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn par_map_preserves_input_order_at_any_thread_count() {
    // Awkward sizes exercise uneven chunking: remainders, fewer items than
    // threads, and single-item inputs.
    for n in [1usize, 2, 7, 64, 257, 1000] {
        let items: Vec<usize> = (0..n).collect();
        for threads in [1, 2, 3, 8, 61] {
            let out = vmin_par::with_threads(threads, || {
                vmin_par::par_map(&items, 1, |idx, &v| (idx, v * 2))
            });
            assert_eq!(out.len(), n);
            for (pos, &(idx, doubled)) in out.iter().enumerate() {
                assert_eq!(idx, pos, "index mismatch: n={n} threads={threads}");
                assert_eq!(doubled, pos * 2, "value mismatch: n={n} threads={threads}");
            }
        }
    }
}

#[test]
fn par_map_propagates_worker_panics() {
    let items: Vec<usize> = (0..100).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        vmin_par::with_threads(4, || {
            vmin_par::par_map(&items, 1, |_, &v| {
                assert!(v != 57, "boom at {v}");
                v
            })
        })
    }));
    assert!(result.is_err(), "a worker panic must reach the caller");
}
