//! PR 9 tentpole lock: the flattened serving kernels must be
//! **bit-identical** to the live-struct prediction paths. For every cell of
//! a seeds × depths × feature-counts grid, both booster families are
//! fitted and calibrated, captured into a [`cqr_vmin::serve::ServeModel`],
//! round-tripped through `vmin-artifact/v1` bytes, and served — and every
//! interval endpoint must carry the *same `f64` bits* as
//! `Cqr::predict_interval` on the live structs. Not approximately equal:
//! the conformal guarantee was proven on the live model, so the deployed
//! artifact must be the same function.

use cqr_vmin::conformal::Cqr;
use cqr_vmin::data::Standardizer;
use cqr_vmin::linalg::Matrix;
use cqr_vmin::models::{
    GradientBoost, GradientBoostParams, Loss, ObliviousBoost, ObliviousBoostParams, TreeParams,
};
use cqr_vmin::serve::{ServeError, ServeModel};
use vmin_rng::ChaCha8Rng;
use vmin_rng::Rng;
use vmin_rng::SeedableRng;

const ALPHA: f64 = 0.1;
const N_TRAIN: usize = 80;
const N_CAL: usize = 40;
const N_TEST: usize = 50;

/// Synthetic multi-monitor data: `d` correlated features, a nonlinear
/// response and heteroscedastic noise so the fitted trees are non-trivial.
fn draw(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let base: f64 = rng.gen_range(0.0..4.0);
        let row: Vec<f64> = (0..d)
            .map(|j| base + rng.gen_range(-0.5..0.5) * (j as f64 + 1.0))
            .collect();
        let signal: f64 = row
            .iter()
            .enumerate()
            .map(|(j, v)| v * (1.0 + j as f64 * 0.3) + (v * 0.7).sin())
            .sum();
        let eps = (0.2 + base) * rng.gen_range(-1.0..1.0);
        rows.push(row);
        y.push(signal + eps);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn gbt_pair(depth: usize, seed: u64) -> Cqr<GradientBoost, GradientBoost> {
    let params = GradientBoostParams {
        n_rounds: 20,
        tree: TreeParams {
            max_depth: depth,
            ..TreeParams::default()
        },
        subsample: 0.8,
        seed,
        ..GradientBoostParams::default()
    };
    Cqr::new(
        GradientBoost::with_params(Loss::Pinball(ALPHA / 2.0), params),
        GradientBoost::with_params(Loss::Pinball(1.0 - ALPHA / 2.0), params),
        ALPHA,
    )
}

fn oblivious_pair(depth: usize) -> Cqr<ObliviousBoost, ObliviousBoost> {
    let params = ObliviousBoostParams {
        n_rounds: 20,
        depth,
        ..ObliviousBoostParams::default()
    };
    Cqr::new(
        ObliviousBoost::with_params(Loss::Pinball(ALPHA / 2.0), params),
        ObliviousBoost::with_params(Loss::Pinball(1.0 - ALPHA / 2.0), params),
        ALPHA,
    )
}

/// Asserts every served interval carries the same bits as the live path.
fn assert_bitwise_equal<M>(model: &ServeModel, cqr_live: &M, x: &Matrix, cell: &str)
where
    M: Fn(&[f64]) -> (f64, f64),
{
    for block in [1usize, 7, 64] {
        let served = model.serve_batch(x, block).unwrap();
        assert_eq!(served.len(), x.rows(), "{cell}: wrong batch length");
        for (i, iv) in served.iter().enumerate() {
            let (lo, hi) = cqr_live(x.row(i));
            assert_eq!(
                iv.lo().to_bits(),
                lo.to_bits(),
                "{cell}: lo bits diverged at row {i} (block {block})"
            );
            assert_eq!(
                iv.hi().to_bits(),
                hi.to_bits(),
                "{cell}: hi bits diverged at row {i} (block {block})"
            );
        }
    }
}

#[test]
fn gbt_serving_is_bit_identical_to_live_structs() {
    for seed in [3u64, 11] {
        for depth in [2usize, 5] {
            for d in [1usize, 3, 6] {
                let (x_tr, y_tr) = draw(N_TRAIN, d, seed);
                let (x_ca, y_ca) = draw(N_CAL, d, seed + 1);
                let (x_te, _) = draw(N_TEST, d, seed + 2);
                let mut cqr = gbt_pair(depth, seed);
                cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();

                let cell = format!("gbt seed={seed} depth={depth} d={d}");
                let model = ServeModel::from_gbt_cqr(&cqr, None).unwrap();
                let live = |row: &[f64]| {
                    let iv = cqr.predict_interval(row).unwrap();
                    (iv.lo(), iv.hi())
                };
                assert_bitwise_equal(&model, &live, &x_te, &cell);

                // The artifact round trip must serve the same bits too.
                let reloaded = ServeModel::from_bytes(&model.to_bytes()).unwrap();
                assert_eq!(reloaded, model, "{cell}: reload is not identical");
                assert_bitwise_equal(&reloaded, &live, &x_te, &format!("{cell} reloaded"));
            }
        }
    }
}

#[test]
fn oblivious_serving_is_bit_identical_to_live_structs() {
    for seed in [3u64, 11] {
        for depth in [2usize, 5] {
            for d in [1usize, 3, 6] {
                let (x_tr, y_tr) = draw(N_TRAIN, d, seed);
                let (x_ca, y_ca) = draw(N_CAL, d, seed + 1);
                let (x_te, _) = draw(N_TEST, d, seed + 2);
                let mut cqr = oblivious_pair(depth);
                cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();

                let cell = format!("oblivious seed={seed} depth={depth} d={d}");
                let model = ServeModel::from_oblivious_cqr(&cqr, None).unwrap();
                let live = |row: &[f64]| {
                    let iv = cqr.predict_interval(row).unwrap();
                    (iv.lo(), iv.hi())
                };
                assert_bitwise_equal(&model, &live, &x_te, &cell);

                let reloaded = ServeModel::from_bytes(&model.to_bytes()).unwrap();
                assert_eq!(reloaded, model, "{cell}: reload is not identical");
                assert_bitwise_equal(&reloaded, &live, &x_te, &format!("{cell} reloaded"));
            }
        }
    }
}

#[test]
fn captured_scaler_reproduces_the_standardized_pipeline_bitwise() {
    // Production models are trained on standardized monitors; the artifact
    // captures the scaler so deployment feeds *raw* rows. Serving raw rows
    // through the captured scaler must match the live path on
    // pre-standardized rows bit for bit — `(v − mean) / scale` is the very
    // expression `Standardizer::transform_row` evaluates.
    let d = 4;
    let (x_tr_raw, y_tr) = draw(N_TRAIN, d, 21);
    let (x_ca_raw, y_ca) = draw(N_CAL, d, 22);
    let (x_te_raw, _) = draw(N_TEST, d, 23);
    let scaler = Standardizer::fit(&x_tr_raw);
    let x_tr = scaler.transform(&x_tr_raw).unwrap();
    let x_ca = scaler.transform(&x_ca_raw).unwrap();

    let mut cqr = gbt_pair(4, 21);
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();

    let model = ServeModel::from_gbt_cqr(&cqr, Some(&scaler)).unwrap();
    let reloaded = ServeModel::from_bytes(&model.to_bytes()).unwrap();
    for m in [&model, &reloaded] {
        let served = m.serve_batch(&x_te_raw, 16).unwrap();
        for (i, iv) in served.iter().enumerate() {
            let z = scaler.transform_row(x_te_raw.row(i)).unwrap();
            let live = cqr.predict_interval(&z).unwrap();
            assert_eq!(iv.lo().to_bits(), live.lo().to_bits(), "lo at row {i}");
            assert_eq!(iv.hi().to_bits(), live.hi().to_bits(), "hi at row {i}");
        }
    }
}

#[test]
fn kill_switch_is_pure_path_selection() {
    // VMIN_SERVE=0 swaps the batch kernels for per-row scalar walks; the
    // outputs must be byte-identical (unlike VMIN_HIST, which changes the
    // fitted model, this switch may not change anything observable).
    let (x_tr, y_tr) = draw(N_TRAIN, 3, 5);
    let (x_ca, y_ca) = draw(N_CAL, 3, 6);
    let (x_te, _) = draw(N_TEST, 3, 7);
    let mut cqr = gbt_pair(4, 5);
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let model = ServeModel::from_gbt_cqr(&cqr, None).unwrap();

    let on = cqr_vmin::serve::with_serve(true, || model.serve_batch(&x_te, 8).unwrap());
    let off = cqr_vmin::serve::with_serve(false, || model.serve_batch(&x_te, 8).unwrap());
    for (i, (a, b)) in on.iter().zip(&off).enumerate() {
        assert_eq!(a.lo().to_bits(), b.lo().to_bits(), "lo at row {i}");
        assert_eq!(a.hi().to_bits(), b.hi().to_bits(), "hi at row {i}");
    }
}

#[test]
fn capture_refuses_uncalibrated_and_serving_refuses_wrong_width() {
    let (x_tr, y_tr) = draw(N_TRAIN, 2, 31);
    let (x_ca, y_ca) = draw(N_CAL, 2, 32);
    let mut cqr = gbt_pair(3, 31);

    // Fitted but never calibrated → no q̂ to capture.
    cqr.fit_calibrate(&x_tr, &y_tr, &x_ca, &y_ca).unwrap();
    let fresh = gbt_pair(3, 31);
    assert_eq!(
        ServeModel::from_gbt_cqr(&fresh, None).unwrap_err(),
        ServeError::NotCalibrated
    );

    let model = ServeModel::from_gbt_cqr(&cqr, None).unwrap();
    let (x_wrong, _) = draw(4, 5, 33);
    match model.serve_batch(&x_wrong, 8) {
        Err(ServeError::ShapeMismatch { expected, got }) => {
            assert_eq!((expected, got), (2, 5));
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // Empty batches are fine — zero intervals, no panic.
    let empty = Matrix::zeros(0, 2);
    assert!(model.serve_batch(&empty, 8).unwrap().is_empty());
}
