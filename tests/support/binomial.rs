//! Exact finite-sample acceptance regions for conformal coverage tests.
//!
//! For split CP / CQR with a continuous score distribution and `m`
//! calibration points, the conformal quantile is the `k`-th smallest score
//! with `k = ⌈(m+1)(1−α)⌉` (see `vmin_conformal::conformal_quantile`), and
//! the coverage *conditional on the calibration set* is distributed
//! `Beta(k, m+1−k)` (Vovk's conditional-validity result). The number of
//! covered points among `n` exchangeable test points is therefore
//! Beta-Binomial(n, k, m+1−k), and a sum over independent repetitions is
//! the convolution of those PMFs. The tests derive *two-sided* acceptance
//! regions from that exact law at a chosen test-level failure probability
//! δ, replacing hand-tuned coverage tolerances: an assertion only fires
//! with probability ≤ δ under the theory, and any systematic calibration
//! bug lands far outside the region.
//!
//! Everything is computed with a Lanczos `ln Γ` — the workspace is
//! dependency-free, so no statrs.

/// Lanczos g=7, n=9 approximation of `ln Γ(x)` for `x > 0`.
///
/// Absolute error is far below 1e-10 over the ranges used here (arguments
/// are at most a few thousand), which is negligible against the δ ≤ 1e-6
/// tail budgets the tests work with.
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma domain: x > 0, got {x}");
    if x < 0.5 {
        // Reflection keeps the small-argument cases accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let z = x - 1.0;
    let mut acc = G[0];
    for (i, g) in G.iter().enumerate().skip(1) {
        acc += g / (z + i as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// `ln C(n, k)`.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n, "choose: k {k} > n {n}");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// The conformal rank `k = ⌈(m+1)(1−α)⌉` for `m` calibration scores —
/// kept textually in sync with `vmin_conformal::conformal_quantile`.
pub fn conformal_rank(ncal: usize, alpha: f64) -> usize {
    ((ncal as f64 + 1.0) * (1.0 - alpha)).ceil() as usize
}

/// PMF of Beta-Binomial(n, a, b) over `0..=n`, renormalized to kill the
/// last float of drift.
pub fn beta_binomial_pmf(n: usize, a: f64, b: f64) -> Vec<f64> {
    assert!(a > 0.0 && b > 0.0, "beta-binomial needs a, b > 0");
    let lnb = ln_beta(a, b);
    let mut pmf: Vec<f64> = (0..=n)
        .map(|j| (ln_choose(n, j) + ln_beta(a + j as f64, b + (n - j) as f64) - lnb).exp())
        .collect();
    let total: f64 = pmf.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "beta-binomial pmf mass {total} drifted from 1"
    );
    for p in &mut pmf {
        *p /= total;
    }
    pmf
}

/// PMF of the number of covered points among `n_test` exchangeable test
/// points for split CP / symmetric CQR with `ncal` calibration scores at
/// miscoverage `alpha`: Beta-Binomial(n_test, k, ncal+1−k).
///
/// Panics when the conformal quantile would be infinite (k > ncal) — the
/// interval is the whole line there and coverage is the trivial constant 1.
pub fn covered_pmf(n_test: usize, ncal: usize, alpha: f64) -> Vec<f64> {
    let k = conformal_rank(ncal, alpha);
    assert!(
        k <= ncal,
        "calibration set of {ncal} too small for alpha {alpha} (rank {k})"
    );
    beta_binomial_pmf(n_test, k as f64, (ncal + 1 - k) as f64)
}

/// Convolution of two PMFs on `0..=len-1` supports.
pub fn convolve(p: &[f64], q: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; p.len() + q.len() - 1];
    for (i, &pi) in p.iter().enumerate() {
        if pi == 0.0 {
            continue;
        }
        for (j, &qj) in q.iter().enumerate() {
            out[i + j] += pi * qj;
        }
    }
    out
}

/// PMF of the sum of `reps` independent copies of `pmf`.
pub fn iid_sum_pmf(pmf: &[f64], reps: usize) -> Vec<f64> {
    assert!(reps >= 1, "need at least one repetition");
    let mut out = pmf.to_vec();
    for _ in 1..reps {
        out = convolve(&out, pmf);
    }
    out
}

/// Largest `t` with `P(X < t) ≤ tail` — asserting `x >= t` fails with
/// probability at most `tail` under the PMF.
pub fn lower_acceptance(pmf: &[f64], tail: f64) -> usize {
    let mut below = 0.0;
    for (t, &p) in pmf.iter().enumerate() {
        if below + p > tail {
            return t;
        }
        below += p;
    }
    pmf.len() - 1
}

/// Smallest `t` with `P(X > t) ≤ tail` — asserting `x <= t` fails with
/// probability at most `tail` under the PMF.
pub fn upper_acceptance(pmf: &[f64], tail: f64) -> usize {
    let mut above = 0.0;
    for (t, &p) in pmf.iter().enumerate().rev() {
        if above + p > tail {
            return t;
        }
        above += p;
    }
    0
}

/// Two-sided acceptance region `[lo, hi]` at test-level failure
/// probability `delta` (δ/2 per tail): `P(X < lo) ≤ δ/2` and
/// `P(X > hi) ≤ δ/2`.
pub fn two_sided_acceptance(pmf: &[f64], delta: f64) -> (usize, usize) {
    (
        lower_acceptance(pmf, delta / 2.0),
        upper_acceptance(pmf, delta / 2.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - f64::ln(f)).abs() < 1e-10,
                "ln_gamma({}) = {got}, want ln({f})",
                n + 1
            );
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn beta_binomial_reduces_to_uniform_for_a_b_one() {
        // BetaBin(n, 1, 1) is uniform on 0..=n.
        let pmf = beta_binomial_pmf(7, 1.0, 1.0);
        for &p in &pmf {
            assert!((p - 1.0 / 8.0).abs() < 1e-12, "{pmf:?}");
        }
    }

    #[test]
    fn conformal_rank_matches_quantile_doc_cases() {
        // M = 9, α = 0.1 → rank 9 (the conformal_quantile doctest case).
        assert_eq!(conformal_rank(9, 0.1), 9);
        // M = 4, α = 0.5 → rank 3.
        assert_eq!(conformal_rank(4, 0.5), 3);
        // M = 40, α = 0.1 → rank 37.
        assert_eq!(conformal_rank(40, 0.1), 37);
    }

    #[test]
    fn acceptance_regions_bracket_the_mean_and_nest() {
        let pmf = covered_pmf(60, 40, 0.1); // BetaBin(60, 37, 4)
        let sum = iid_sum_pmf(&pmf, 12);
        let mean = 12.0 * 60.0 * 37.0 / 41.0;
        let (lo, hi) = two_sided_acceptance(&sum, 1e-6);
        assert!(
            (lo as f64) < mean && mean < hi as f64,
            "[{lo}, {hi}] vs {mean}"
        );
        let (lo9, hi9) = two_sided_acceptance(&sum, 1e-9);
        assert!(lo9 <= lo && hi <= hi9, "smaller δ must widen the region");
        // Total mass outside [lo, hi] really is ≤ δ.
        let outside: f64 = sum[..lo].iter().sum::<f64>() + sum[hi + 1..].iter().sum::<f64>();
        assert!(outside <= 1e-6, "outside mass {outside}");
    }
}
