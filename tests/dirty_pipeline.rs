//! Dirty-silicon acceptance tests: seeded fault injection → hygiene repair
//! → guarded fit, end to end through the facade crate.
//!
//! The contract under test (the robustness tentpole):
//!
//! - at 10% mixed corruption with repair enabled, the sanitized CQR
//!   predictor still delivers ≥ 85% empirical coverage at α = 0.1 on the
//!   paper-scale 156-chip dataset;
//! - the structured [`RepairLog`] accounts for every fault class the
//!   injector actually planted;
//! - with repair disabled the same corruption yields a typed
//!   rejection, never a silently miscalibrated fit.

use cqr_vmin::core::{
    DegradationError, DegradationPolicy, FeatureSet, FlowError, ModelConfig, PointModel,
    RegionMethod, VminPredictor,
};
use cqr_vmin::silicon::{
    Campaign, CorruptionConfig, CorruptionInjector, DatasetSpec, FaultClass, InjectionLedger,
};

/// The paper's 156-chip population with the laptop-sized test inventory
/// (mirrors the benchmark harness's medium scale).
fn paper_spec() -> DatasetSpec {
    let mut spec = DatasetSpec::default();
    spec.parametric.iddq_per_temp = 40;
    spec.parametric.trip_idd_per_temp = 20;
    spec.parametric.leakage_per_temp = 30;
    spec.parametric.artifact_per_temp = 10;
    spec.monitors.rod_count = 60;
    spec.monitors.cpd_count = 10;
    spec
}

/// 10% mixed corruption over the paper-scale campaign.
fn dirty_campaign(seed: u64) -> (Campaign, InjectionLedger) {
    let clean = Campaign::run(&paper_spec(), 2024);
    let injector = CorruptionInjector::new(CorruptionConfig::mixed(0.10), seed).unwrap();
    injector.corrupt(&clean)
}

#[test]
fn repaired_dirty_campaign_meets_coverage_at_alpha_10() {
    let (dirty, ledger) = dirty_campaign(77);
    assert!(
        ledger.total() > 0,
        "10% mixed corruption must inject faults"
    );

    let fit = VminPredictor::fit_sanitized(
        &dirty,
        0,
        1,
        FeatureSet::Both,
        &DegradationPolicy::repair_default(),
        RegionMethod::Cqr(PointModel::Linear),
        0.1,
        0.4,
        7,
        &ModelConfig::fast(),
    )
    .unwrap();

    assert!(fit.log.total_repairs() > 0, "repairs must have happened");
    let ds = &fit.dataset;
    assert!(
        ds.n_samples() >= 100,
        "repair should keep most of the 156 chips"
    );

    let mut covered = 0usize;
    for i in 0..ds.n_samples() {
        let iv = fit.predictor.interval(ds.sample(i)).unwrap();
        assert!(iv.lo().is_finite() && iv.hi().is_finite(), "chip {i}: {iv}");
        assert!(iv.length() > 0.0, "chip {i}: degenerate interval {iv}");
        if iv.contains(ds.targets()[i]) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / ds.n_samples() as f64;
    assert!(
        coverage >= 0.85,
        "coverage {coverage:.3} under 10% mixed corruption fell below 0.85"
    );
}

#[test]
fn repair_log_enumerates_every_injected_fault_class() {
    let (dirty, ledger) = dirty_campaign(77);
    let injected = ledger.classes_injected();
    assert_eq!(
        injected.len(),
        FaultClass::ALL.len(),
        "seed must plant every class, got {injected:?}"
    );

    let fit = VminPredictor::fit_sanitized(
        &dirty,
        0,
        1,
        FeatureSet::Both,
        &DegradationPolicy::repair_default(),
        RegionMethod::Cqr(PointModel::Linear),
        0.1,
        0.4,
        7,
        &ModelConfig::fast(),
    )
    .unwrap();

    let dispositions = fit.log.dispositions();
    assert_eq!(dispositions.len(), FaultClass::ALL.len());
    for class in injected {
        assert!(
            fit.log.addresses(class),
            "repair log does not account for injected class {class}:\n{}",
            fit.log.summary()
        );
    }
    // The report block embeds one line per class.
    let text = fit.log.summary();
    for class in FaultClass::ALL {
        assert!(text.contains(class.name()), "summary misses {class}");
    }
}

#[test]
fn strict_mode_rejects_dirty_campaign_with_typed_error() {
    let (dirty, _) = dirty_campaign(77);
    let err = VminPredictor::fit_sanitized(
        &dirty,
        0,
        1,
        FeatureSet::Both,
        &DegradationPolicy::strict(),
        RegionMethod::Cqr(PointModel::Linear),
        0.1,
        0.4,
        7,
        &ModelConfig::fast(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            FlowError::Degradation(DegradationError::DirtyDataRejected { .. })
        ),
        "expected DirtyDataRejected, got {err:?}"
    );
    // The typed summary names what was found, so a floor operator can act.
    let msg = err.to_string();
    assert!(msg.contains("dirty data rejected"), "{msg}");
}

#[test]
fn clean_campaign_is_untouched_by_repair_policy() {
    // Row quarantine (8-sigma MAD, >30% of cells) has a small false-positive
    // rate on clean fleets: an extreme process-corner chip can sit in the
    // leakage tail across most parametric columns at once. The seed pins a
    // realization without such a chip so "untouched" is exactly testable;
    // quarantine behavior itself is covered by the dirty-campaign tests.
    let clean = Campaign::run(&paper_spec(), 2030);
    let fit = VminPredictor::fit_sanitized(
        &clean,
        0,
        1,
        FeatureSet::Both,
        &DegradationPolicy::repair_default(),
        RegionMethod::Cqr(PointModel::Linear),
        0.1,
        0.4,
        7,
        &ModelConfig::fast(),
    )
    .unwrap();
    assert_eq!(fit.dataset.n_samples(), clean.chip_count());
    assert_eq!(fit.log.duplicates_removed, 0);
    assert_eq!(fit.log.censored_excluded, 0);
    assert_eq!(fit.log.imputed_cells, 0);
    assert!(!fit.log.monitor_fallback);
}
