//! Failure-injection tests: degenerate, hostile and boundary inputs must
//! surface as typed errors (or documented panics), never as silent garbage.

use cqr_vmin::conformal::{
    conformal_quantile, with_adaptive, CalibrationError, ConformalError, Cqr, LadderState,
    SplitConformal,
};
use cqr_vmin::core::{
    assemble_dataset, run_stream, sanitize_campaign, DegradationPolicy, FeatureSet, ModelConfig,
    PointModel, RegionMethod, StreamConfig, StreamReport, VminPredictor,
};
use cqr_vmin::data::hygiene::impute_missing;
use cqr_vmin::data::{Dataset, HygieneError, Standardizer};
use cqr_vmin::linalg::{lstsq, Cholesky, Matrix};
use cqr_vmin::models::{
    GaussianProcess, GradientBoost, LinearRegression, Loss, NeuralNet, ObliviousBoost,
    QuantileLinear, Regressor,
};
use cqr_vmin::silicon::{
    Campaign, CorruptionConfig, CorruptionInjector, DatasetSpec, DriftClass, DriftFault,
    DriftInjector,
};

fn tiny_xy() -> (Matrix, Vec<f64>) {
    let x = Matrix::from_rows(&(0..12).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
    let y: Vec<f64> = (0..12).map(|i| i as f64).collect();
    (x, y)
}

#[test]
fn nan_targets_are_rejected_by_every_model() {
    let (x, mut y) = tiny_xy();
    y[3] = f64::NAN;
    let models: Vec<Box<dyn Regressor>> = vec![
        Box::new(LinearRegression::new()),
        Box::new(QuantileLinear::new(0.5)),
        Box::new(GaussianProcess::new()),
        Box::new(GradientBoost::new(Loss::Squared)),
        Box::new(ObliviousBoost::new(Loss::Squared)),
        Box::new(NeuralNet::new(Loss::Squared)),
    ];
    for mut m in models {
        assert!(m.fit(&x, &y).is_err(), "{m:?} accepted a NaN target");
    }
}

#[test]
fn empty_and_mismatched_training_sets_are_rejected() {
    let empty = Matrix::zeros(0, 3);
    let mut lr = LinearRegression::new();
    assert!(lr.fit(&empty, &[]).is_err());
    let (x, _) = tiny_xy();
    assert!(lr.fit(&x, &[1.0, 2.0]).is_err());
}

#[test]
fn constant_features_do_not_break_the_pipeline() {
    // All-constant feature matrix: standardizer must not divide by zero,
    // models must still fit (predicting ~the mean).
    let x = Matrix::from_rows(&vec![vec![7.0, 7.0]; 20]).unwrap();
    let y: Vec<f64> = (0..20).map(|i| 100.0 + i as f64).collect();
    let s = Standardizer::fit(&x);
    let z = s.transform(&x).unwrap();
    assert!(z.as_slice().iter().all(|v| v.is_finite()));
    let mut lr = LinearRegression::new();
    lr.fit(&z, &y).unwrap();
    let p = lr.predict_row(&[0.0, 0.0]).unwrap();
    assert!(
        (p - 109.5).abs() < 1.0,
        "constant features → mean prediction, got {p}"
    );
}

#[test]
fn singular_systems_surface_as_errors_not_garbage() {
    // Exactly collinear columns through raw lstsq must error (the
    // LinearRegression wrapper falls back to ridge, tested elsewhere).
    let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
    assert!(lstsq(&x, &[1.0, 2.0, 3.0]).is_err());
    // Indefinite matrix through Cholesky must error.
    let bad = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
    assert!(Cholesky::factor(&bad).is_err());
}

#[test]
fn conformal_rejects_degenerate_calibration() {
    assert!(conformal_quantile(&[], 0.1).is_err());
    assert!(conformal_quantile(&[1.0, f64::NAN], 0.1).is_err());
    assert!(conformal_quantile(&[1.0], -0.1).is_err());

    let (x, y) = tiny_xy();
    let mut cp = SplitConformal::new(LinearRegression::new(), 0.1);
    assert!(cp.fit_calibrate(&x, &y, &Matrix::zeros(0, 1), &[]).is_err());

    let mut cqr = Cqr::new(QuantileLinear::new(0.05), QuantileLinear::new(0.95), 0.1);
    assert!(cqr.fit_calibrate(&x, &y, &x, &y[..5]).is_err());
}

#[test]
fn undersized_calibration_yields_infinite_but_valid_intervals() {
    // 4 calibration points at α = 0.1 < min_calibration_size(0.1) = 9:
    // the guarantee forces the whole line. The pipeline must not panic and
    // the interval must (trivially) cover.
    let (x, y) = tiny_xy();
    let mut cp = SplitConformal::new(LinearRegression::new(), 0.1);
    cp.fit_calibrate(&x, &y, &x.select_rows(&[0, 1, 2, 3]).unwrap(), &y[..4])
        .unwrap();
    let iv = cp.predict_interval(&[5.0]).unwrap();
    assert!(iv.length().is_infinite());
    assert!(iv.contains(1e12));
}

#[test]
fn predictor_rejects_malformed_rows() {
    let x = Matrix::from_rows(
        &(0..40)
            .map(|i| vec![i as f64, (i * i) as f64, 1.0])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let y: Vec<f64> = (0..40).map(|i| 500.0 + i as f64).collect();
    let ds = Dataset::with_default_names(x, y).unwrap();
    let p = VminPredictor::fit(
        &ds,
        RegionMethod::Cqr(PointModel::Linear),
        0.2,
        0.4,
        1,
        &ModelConfig::fast(),
    )
    .unwrap();
    // Wrong row width must error, not panic.
    assert!(p.interval(&[1.0]).is_err());
    assert!(p.interval(&[1.0, 2.0, 3.0, 4.0]).is_err());
}

#[test]
fn invalid_alphas_rejected_everywhere() {
    let (x, y) = tiny_xy();
    for alpha in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
        let mut cp = SplitConformal::new(LinearRegression::new(), alpha);
        assert!(
            cp.fit_calibrate(&x, &y, &x, &y).is_err(),
            "split CP took α={alpha}"
        );
        let ds = Dataset::with_default_names(x.clone(), y.clone()).unwrap();
        assert!(
            VminPredictor::fit(
                &ds,
                RegionMethod::Cqr(PointModel::Linear),
                alpha,
                0.4,
                1,
                &ModelConfig::fast()
            )
            .is_err(),
            "predictor took α={alpha}"
        );
    }
}

#[test]
fn corruption_injector_is_bitwise_deterministic() {
    // Same seed → bitwise-identical dirty campaigns and identical ledgers.
    // NaN != NaN, so the comparison goes through the bit patterns of the
    // assembled feature matrices, never float equality.
    let clean = Campaign::run(&DatasetSpec::small(), 31);
    let injector = CorruptionInjector::new(CorruptionConfig::mixed(0.08), 404).unwrap();
    let (dirty_a, ledger_a) = injector.corrupt(&clean);
    let (dirty_b, ledger_b) = injector.corrupt(&clean);
    assert_eq!(ledger_a, ledger_b);
    for (rp, temp) in [(0usize, 1usize), (3, 0)] {
        let da = assemble_dataset(&dirty_a, rp, temp, FeatureSet::Both).unwrap();
        let db = assemble_dataset(&dirty_b, rp, temp, FeatureSet::Both).unwrap();
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(da.features()), bits(db.features()), "rp {rp} t {temp}");
        assert_eq!(
            da.targets().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            db.targets().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }
    // A different seed must corrupt differently.
    let other = CorruptionInjector::new(CorruptionConfig::mixed(0.08), 405).unwrap();
    assert_ne!(other.corrupt(&clean).1, ledger_a);
}

#[test]
fn all_nan_feature_column_is_a_typed_imputation_error() {
    // A column with no finite value has no median; imputation must say so
    // by name instead of fabricating zeros or panicking.
    let x = Matrix::from_rows(
        &(0..10)
            .map(|i| vec![i as f64, f64::NAN])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let y: Vec<f64> = (0..10).map(|i| 500.0 + i as f64).collect();
    let ds = Dataset::new(x, y, vec!["good".into(), "dead".into()]).unwrap();
    match impute_missing(&ds) {
        Err(HygieneError::AllMissingColumn { column, name }) => {
            assert_eq!(column, 1);
            assert_eq!(name, "dead");
        }
        other => panic!("expected AllMissingColumn, got {other:?}"),
    }
}

#[test]
fn censored_rows_are_excluded_from_calibration_data() {
    // Right-censored Vmin rows (search ceiling hits) carry no usable target;
    // the sanitized dataset every fit and calibration split is drawn from
    // must not contain them.
    let clean = Campaign::run(&DatasetSpec::small(), 31);
    let injector = CorruptionInjector::new(
        CorruptionConfig {
            censored_vmin_rate: 0.2,
            ..CorruptionConfig::clean()
        },
        9,
    )
    .unwrap();
    let dirty = injector.corrupt(&clean).0;
    let ceiling = dirty.spec.vmin_test.search_high.to_millivolts();
    let raw = assemble_dataset(&dirty, 0, 1, FeatureSet::Both).unwrap();
    assert!(
        raw.targets().iter().any(|&t| t >= ceiling - 1e-9),
        "injection should censor some targets"
    );
    let (ds, log) = sanitize_campaign(
        &dirty,
        0,
        1,
        FeatureSet::Both,
        &DegradationPolicy::repair_default(),
    )
    .unwrap();
    assert!(log.censored_excluded > 0);
    assert!(ds.targets().iter().all(|&t| t < ceiling - 1e-9));
    assert_eq!(ds.n_samples(), raw.n_samples() - log.censored_excluded);
}

// ---------------------------------------------------------------------------
// Streaming drift faults: each canonical mid-stream fault class must land
// the adaptive layer's degradation ladder in its documented state (see
// DESIGN.md §11), bit-identically under different thread counts.
// ---------------------------------------------------------------------------

/// Streams one drifted campaign under `VMIN_THREADS ∈ {1, 2}` and asserts
/// the two reports are identical before returning one of them.
fn stream_drifted(
    class: DriftClass,
    onset: usize,
    magnitude_mv: f64,
    feature_set: FeatureSet,
) -> StreamReport {
    // Seed picked so every canonical fault class reaches its documented
    // ladder state on this realization (the escalation depth under a fixed
    // drift magnitude is data-dependent).
    let clean = Campaign::run(&DatasetSpec::small(), 22);
    let (drifted, ledger) = DriftInjector::new(
        vec![DriftFault {
            class,
            onset,
            magnitude_mv,
            fraction: 1.0,
        }],
        3,
    )
    .unwrap()
    .inject(&clean);
    assert!(ledger.total() > 0, "{class}: nothing injected");
    let cfg = StreamConfig {
        feature_set,
        ..StreamConfig::fast(0.2)
    };
    let serial = vmin_par::with_threads(1, || run_stream(&drifted, &cfg).unwrap());
    let par = vmin_par::with_threads(2, || run_stream(&drifted, &cfg).unwrap());
    assert_eq!(serial, par, "{class}: stream depends on thread count");
    serial
}

#[test]
fn catastrophic_sudden_shift_lands_in_rejecting() {
    with_adaptive(true, || {
        // A fleet-wide 2 V jump: no recalibration can rescue this; the
        // terminal valve must close and stay closed.
        let report = stream_drifted(DriftClass::SuddenShift, 3, 2000.0, FeatureSet::Both);
        assert_eq!(report.worst_state, LadderState::Rejecting);
        assert_eq!(report.final_state, LadderState::Rejecting);
        // Graceful degradation: post-onset observations are consumed but no
        // interval is certified.
        for stats in &report.per_read_point[4..] {
            assert_eq!(stats.issued, 0, "rp {}", stats.read_point);
            assert_eq!(stats.rejected, stats.n);
        }
        // Pre-onset read points were healthy.
        assert_eq!(report.per_read_point[0].rejected, 0);
    });
}

#[test]
fn ramp_drift_forces_recalibration_and_recovers() {
    with_adaptive(true, || {
        let report = stream_drifted(DriftClass::Ramp, 3, 20.0, FeatureSet::Both);
        assert_eq!(report.worst_state, LadderState::Recalibrating);
        assert_ne!(report.final_state, LadderState::Rejecting);
        // The point of recalibrating: at the last read point the adaptive
        // layer still covers while the frozen calibration has collapsed.
        let last = report.per_read_point.last().unwrap();
        assert!(
            last.covered > last.static_covered,
            "adaptive {} vs static {} at rp {}",
            last.covered,
            last.static_covered,
            last.read_point
        );
    });
}

#[test]
fn variance_blowup_escalates_through_dispersion_statistic() {
    with_adaptive(true, || {
        // A pure noise blow-up barely moves the mean score; only the
        // dispersion half of the drift statistic can catch it.
        let report = stream_drifted(DriftClass::VarianceBlowup, 3, 60.0, FeatureSet::Both);
        assert_eq!(report.worst_state, LadderState::Recalibrating);
        assert_ne!(report.final_state, LadderState::Rejecting);
        assert!(!report.transitions.is_empty());
    });
}

#[test]
fn sensor_dropout_escalates_an_onchip_model_beyond_its_clean_baseline() {
    with_adaptive(true, || {
        // Frozen monitors only hurt a model that actually *uses* them: under
        // an on-chip-only feature set, stale readings push the ladder to a
        // window rebuild, beyond anything the clean stream provokes.
        let report = stream_drifted(DriftClass::SensorDropout, 3, 0.0, FeatureSet::OnChip);
        assert_eq!(report.worst_state, LadderState::Recalibrating);

        // Same campaign seed as `stream_drifted` so the comparison is
        // dropout-vs-clean on one fleet, not two different fleets.
        let clean = Campaign::run(&DatasetSpec::small(), 22);
        let cfg = StreamConfig {
            feature_set: FeatureSet::OnChip,
            ..StreamConfig::fast(0.2)
        };
        let baseline = run_stream(&clean, &cfg).unwrap();
        assert!(
            baseline.worst_state < LadderState::Recalibrating,
            "clean on-chip stream already reached {}",
            baseline.worst_state
        );
    });
}

#[test]
fn adaptive_calibrator_surfaces_typed_calibration_errors() {
    use cqr_vmin::conformal::{AdaptiveCalibrator, AdaptiveConfig, PredictionInterval};
    // Empty and all-non-finite initial windows are typed, not panics.
    let cfg = AdaptiveConfig::for_alpha(0.2);
    assert_eq!(
        AdaptiveCalibrator::new(&[], cfg.clone()).unwrap_err(),
        ConformalError::Calibration(CalibrationError::EmptyWindow)
    );
    assert!(matches!(
        AdaptiveCalibrator::new(&[f64::NAN; 20], cfg.clone()).unwrap_err(),
        ConformalError::Calibration(CalibrationError::NonFiniteScores { .. })
    ));
    // A malformed telemetry packet mid-stream is typed too and leaves the
    // window untouched.
    let scores: Vec<f64> = (0..30).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut cal = AdaptiveCalibrator::new(&scores, cfg).unwrap();
    assert!(matches!(
        cal.observe(PredictionInterval::new(0.0, 1.0), f64::NAN)
            .unwrap_err(),
        ConformalError::Calibration(CalibrationError::NonFiniteScores { .. })
    ));
    assert_eq!(cal.window_len(), 30);
}

#[test]
fn extreme_feature_magnitudes_stay_finite() {
    // Features spanning 12 orders of magnitude (like raw IDDQ vs delays):
    // standardization inside the models must keep everything finite.
    let x = Matrix::from_rows(
        &(0..30)
            .map(|i| vec![i as f64 * 1e-9, i as f64 * 1e6])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let y: Vec<f64> = (0..30).map(|i| 550.0 + (i % 7) as f64).collect();
    let mut nn = NeuralNet::with_params(
        Loss::Squared,
        cqr_vmin::models::NeuralNetParams {
            epochs: 200,
            ..Default::default()
        },
    );
    nn.fit(&x, &y).unwrap();
    let p = nn.predict_row(x.row(3)).unwrap();
    assert!(p.is_finite(), "NN produced {p}");
    let mut gp = GaussianProcess::new();
    gp.fit(&x, &y).unwrap();
    let (m, s) = gp.predict_with_std(x.row(3)).unwrap();
    assert!(m.is_finite() && s.is_finite());
}
